"""Property-based tests: the canonical ranking is a strict total order that
subsumes set inclusion (the two facts the correctness proofs rely on)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import CanonicalRanking, KnowledgeGraph, Region

from .test_graph_invariants import connected_graphs


RANKING = CanonicalRanking()


@st.composite
def graph_and_regions(draw, count=3):
    """A connected graph plus up to ``count`` non-empty connected regions."""
    graph = draw(connected_graphs(min_nodes=3, max_nodes=12))
    nodes = sorted(graph.nodes)
    regions = []
    for _ in range(count):
        seed = draw(st.sampled_from(nodes))
        size = draw(st.integers(1, min(5, len(nodes))))
        members = {seed}
        frontier = sorted(graph.neighbours(seed))
        while frontier and len(members) < size:
            index = draw(st.integers(0, len(frontier) - 1))
            chosen = frontier.pop(index)
            if chosen in members:
                continue
            members.add(chosen)
            frontier.extend(sorted(graph.neighbours(chosen) - members))
        regions.append(Region(frozenset(members)))
    return graph, regions


class TestStrictTotalOrder:
    @given(graph_and_regions(count=1))
    @settings(max_examples=60, deadline=None)
    def test_irreflexive(self, data):
        graph, (region, *_rest) = data[0], data[1]
        assert not RANKING.precedes(graph, region, region)

    @given(graph_and_regions(count=2))
    @settings(max_examples=80, deadline=None)
    def test_antisymmetric_and_total(self, data):
        graph, regions = data
        first, second = regions[0], regions[1]
        forwards = RANKING.precedes(graph, first, second)
        backwards = RANKING.precedes(graph, second, first)
        if first == second:
            assert not forwards and not backwards
        else:
            # exactly one direction holds: total and antisymmetric
            assert forwards != backwards

    @given(graph_and_regions(count=3))
    @settings(max_examples=80, deadline=None)
    def test_transitive(self, data):
        graph, regions = data
        a, b, c = regions
        if RANKING.precedes(graph, a, b) and RANKING.precedes(graph, b, c):
            assert RANKING.precedes(graph, a, c)

    @given(graph_and_regions(count=3))
    @settings(max_examples=60, deadline=None)
    def test_key_consistent_with_precedes(self, data):
        graph, regions = data
        for first in regions:
            for second in regions:
                if first == second:
                    continue
                assert RANKING.precedes(graph, first, second) == (
                    RANKING.key(graph, first) < RANKING.key(graph, second)
                )

    @given(graph_and_regions(count=3))
    @settings(max_examples=60, deadline=None)
    def test_max_ranked_is_maximum(self, data):
        graph, regions = data
        best = RANKING.max_ranked(graph, regions)
        for region in regions:
            if region != best:
                assert not RANKING.precedes(graph, best, region)


class TestSubsumesInclusion:
    @given(graph_and_regions(count=1))
    @settings(max_examples=80, deadline=None)
    def test_strict_superset_outranks(self, data):
        """Theorem 4 relies on ``V ⊂ W  =>  V ≺ W``."""
        graph, (region,) = data
        border = region.border(graph)
        if not border:
            return
        grown = Region(region.members | {sorted(border, key=repr)[0]})
        assert RANKING.precedes(graph, region, grown)
        assert not RANKING.precedes(graph, grown, region)
