"""Trace-equivalence property battery.

The trace pipeline has three representations of one run — the columnar
store behind ``collection="trace"``, the streamed digest/metrics state
behind ``collection="digest"``, and the plain event list they both
abstract — plus a composition law (per-worker partial sums) that the
partitioned backend relies on.  This suite pins their equivalences on
hypothesis-generated event streams:

* columnar round-trip: a ``TraceRecorder`` stores events columnar but
  must replay them equal, in order, with the same digest — including
  after a pickle round-trip of the columns (the worker wire format);
* streaming == batch: folding events one at a time through
  :class:`StreamingTraceDigest` equals digesting the finished list, for
  every kind-filter combination, and the streaming fast path produces
  byte-identical event lines to the canonical encoder;
* compositionality: splitting a stream by node, folding each part
  separately and summing the partials equals the whole-trace digest, for
  any interleaving of the per-node subsequences;
* digest-mode recorder == trace-mode recorder on every query both
  support, and :class:`StreamingRunMetrics` (observe, merge, finalize)
  equals :func:`collect_metrics` over the full trace.
"""

from __future__ import annotations

import pickle
import random

from hypothesis import given, settings, strategies as st

from repro.sim.events import EventKind, TraceEvent
from repro.trace import (
    DIGEST_RETAINED_KINDS,
    EventColumns,
    StreamingRunMetrics,
    StreamingTraceDigest,
    TraceRecorder,
    TraceUnavailableError,
    collect_metrics,
    combine_partials,
    event_line,
    hex_of_partial,
    trace_digest,
)

NODES = ["a", "b", "c", (0, 1), (1, 2), 7]
KINDS = list(EventKind)

#: Hashable payload values (DECIDED payloads land in a set) covering the
#: canonical-text shapes: primitives, tuples, frozensets, None.
payload_values = st.one_of(
    st.none(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=8),
    st.tuples(st.integers(0, 99), st.text(max_size=4)),
    st.frozensets(st.integers(0, 9), max_size=4),
)

detail_values = st.dictionaries(
    st.text(min_size=1, max_size=6),
    st.one_of(st.integers(0, 999), st.text(max_size=6)),
    max_size=2,
)


@st.composite
def event_streams(draw, min_size=0, max_size=60):
    """An ordered stream of trace events over a small node universe.

    Payloads are drawn from a per-stream pool and reused *by object
    identity* across events — exactly how the simulator shares one
    message object between its SENT and DELIVERED records — so the
    streaming digest's identity-keyed payload cache is exercised on
    every run.
    """
    pool_size = draw(st.integers(1, 6))
    pool = draw(
        st.lists(payload_values, min_size=pool_size, max_size=pool_size)
    )
    count = draw(st.integers(min_size, max_size))
    times = sorted(
        draw(
            st.lists(
                st.floats(0.0, 500.0, allow_nan=False, allow_infinity=False),
                min_size=count,
                max_size=count,
            )
        )
    )
    events = []
    for time in times:
        kind = draw(st.sampled_from(KINDS))
        node = draw(st.sampled_from(NODES))
        peer = draw(st.one_of(st.none(), st.sampled_from(NODES)))
        payload = draw(st.sampled_from(pool))
        detail = draw(detail_values)
        events.append(
            TraceEvent(
                time=time, kind=kind, node=node, peer=peer,
                payload=payload, detail=detail,
            )
        )
    return events


kind_filters = st.one_of(
    st.none(),
    st.sets(st.sampled_from(KINDS), min_size=1, max_size=4),
)


def record_all(events, collection="trace"):
    recorder = TraceRecorder(collection=collection)
    for event in events:
        recorder.record(event)
    return recorder


class TestColumnarRoundTrip:
    @given(event_streams())
    @settings(max_examples=60, deadline=None)
    def test_recorder_replays_events_equal_and_in_order(self, events):
        recorder = record_all(events)
        assert list(recorder) == events
        assert recorder.events == tuple(events)
        assert len(recorder) == len(events)
        assert recorder.digest() == trace_digest(events)

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_columns_survive_pickle(self, events):
        """The worker wire format: columns must round-trip through pickle
        with events, digest and further appends intact."""
        columns = EventColumns()
        for event in events:
            columns.append(event)
        restored = pickle.loads(pickle.dumps(columns))
        assert list(restored) == events
        assert trace_digest(restored) == trace_digest(events)
        extra = TraceEvent(time=1000.0, kind=EventKind.CUSTOM, node="a")
        restored.append(extra)
        assert list(restored) == events + [extra]

    @given(event_streams(), kind_filters)
    @settings(max_examples=60, deadline=None)
    def test_kind_filtered_queries_match_list_comprehension(self, events, kinds):
        recorder = record_all(events)
        if kinds is None:
            return
        wanted = tuple(kinds)
        expected = [event for event in events if event.kind in kinds]
        assert recorder.of_kind(*wanted) == expected


class TestStreamingDigestEqualsBatch:
    @given(event_streams(), kind_filters)
    @settings(max_examples=60, deadline=None)
    def test_streamed_equals_batch_for_kind_filters(self, events, kinds):
        stream = StreamingTraceDigest(kinds=kinds)
        for event in events:
            stream.update(event)
        assert stream.hexdigest() == trace_digest(events, kinds=kinds)
        filtered = [e for e in events if kinds is None or e.kind in kinds]
        assert stream.hexdigest() == trace_digest(filtered)

    @given(event_streams(min_size=1))
    @settings(max_examples=60, deadline=None)
    def test_fast_line_matches_canonical_encoding(self, events):
        """The identity-cached line builder must be byte-identical to the
        canonical dataclass encoding — including when one payload object
        recurs (cache hit) and when equal-but-distinct objects appear."""
        stream = StreamingTraceDigest()
        for event in events:
            assert stream._line(event) == event_line(event)
        # Equal payloads behind distinct objects must also agree.
        first = events[0]
        if first.payload is not None:
            clone = TraceEvent(
                time=first.time, kind=first.kind, node=first.node,
                peer=first.peer, payload=pickle.loads(pickle.dumps(first.payload)),
                detail=dict(first.detail),
            )
            assert stream._line(clone) == event_line(first)

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_digest_is_sensitive_to_any_single_event_change(self, events):
        if not events:
            return
        base = trace_digest(events)
        index = len(events) // 2
        victim = events[index]
        mutated = TraceEvent(
            time=victim.time, kind=victim.kind, node=victim.node,
            peer=victim.peer, payload=("mutated", victim.payload),
            detail=victim.detail,
        )
        assert trace_digest(events[:index] + [mutated] + events[index + 1:]) != base
        assert trace_digest(events[:index] + events[index + 1:]) != base


class TestDigestComposition:
    @given(event_streams(), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_split_by_node_partials_sum_to_whole(self, events, split_seed):
        """The partition-worker contract: nodes distributed arbitrarily
        across disjoint workers, each folding only its own events, must
        combine to the whole-trace digest."""
        rng = random.Random(split_seed)
        owner = {node: rng.randrange(3) for node in NODES}
        shards = [StreamingTraceDigest() for _ in range(3)]
        for event in events:
            shards[owner[event.node]].update(event)
        combined = combine_partials(shard.partial() for shard in shards)
        assert hex_of_partial(combined) == trace_digest(events)

    @given(event_streams(), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_digest_invariant_under_cross_node_interleaving(self, events, shuffle_seed):
        """Any merge order that preserves each node's subsequence digests
        identically — the documented trade-off of the node-composed sum."""
        queues = {}
        for event in events:
            queues.setdefault(event.node, []).append(event)
        rng = random.Random(shuffle_seed)
        interleaved = []
        pending = {node: list(queue) for node, queue in queues.items()}
        while pending:
            node = rng.choice(sorted(pending, key=repr))
            interleaved.append(pending[node].pop(0))
            if not pending[node]:
                del pending[node]
        assert trace_digest(interleaved) == trace_digest(events)


class TestDigestModeRecorder:
    @given(event_streams())
    @settings(max_examples=60, deadline=None)
    def test_digest_mode_agrees_with_trace_mode(self, events):
        full = record_all(events, collection="trace")
        lean = record_all(events, collection="digest")
        assert lean.digest() == full.digest()
        assert len(lean) == len(full)
        assert lean.end_time() == full.end_time()
        assert lean.decisions() == full.decisions()
        assert lean.crashes() == full.crashes()
        assert lean.crashed_nodes() == full.crashed_nodes()
        retained = tuple(DIGEST_RETAINED_KINDS)
        assert lean.digest(*retained) == full.digest(*retained)

    @given(event_streams())
    @settings(max_examples=40, deadline=None)
    def test_streamed_metrics_equal_collected_metrics(self, events):
        full = record_all(events, collection="trace")
        lean = record_all(events, collection="digest")
        assert collect_metrics(lean) == collect_metrics(full)

    @given(event_streams(), st.integers(0, 2**32))
    @settings(max_examples=40, deadline=None)
    def test_metrics_merge_equals_whole_stream(self, events, split_seed):
        """Per-shard metrics accumulators merged at the coordinator equal
        one accumulator that saw every event (in trace order)."""
        rng = random.Random(split_seed)
        owner = {node: rng.randrange(3) for node in NODES}
        shards = [StreamingRunMetrics() for _ in range(3)]
        whole = StreamingRunMetrics()
        for event in events:
            shards[owner[event.node]].observe(event)
            whole.observe(event)
        merged = StreamingRunMetrics()
        for shard in shards:
            merged.merge(shard)
        assert merged.finalize() == whole.finalize()

    @given(event_streams(min_size=1))
    @settings(max_examples=30, deadline=None)
    def test_log_queries_raise_trace_unavailable(self, events):
        lean = record_all(events, collection="digest")
        for query in (
            lambda: lean.events,
            lambda: list(iter(lean)),
            lambda: lean.at_node(events[0].node),
            lambda: lean.to_lines(),
            lambda: lean.of_kind(EventKind.MESSAGE_SENT),
            lambda: lean.digest(EventKind.MESSAGE_SENT),
        ):
            try:
                query()
            except TraceUnavailableError:
                continue
            raise AssertionError(f"{query} should have raised TraceUnavailableError")
