"""Property-based tests for dynamic membership.

Two families:

* graph re-insertion invariants — removing a node and re-inserting it with
  its old edges is the identity, and insertion behaves like the inverse of
  removal in general;
* protocol invariants under churn — a random node of a random connected
  graph crashes, recovers and re-crashes, and the run must satisfy the
  epoch-quotiented CD1–CD7 specification, reach quiescence, and decide the
  node's region in both crash epochs.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.churn import crash_recover_recrash, run_churn
from repro.graph import GraphError, KnowledgeGraph

from .test_graph_invariants import connected_graphs


@st.composite
def graph_and_node(draw, min_nodes=3, max_nodes=12):
    graph = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    node = draw(st.sampled_from(sorted(graph.nodes)))
    return graph, node


class TestReinsertionInvariants:
    @given(graph_and_node())
    @settings(max_examples=80, deadline=None)
    def test_remove_then_reinsert_is_identity(self, data):
        graph, node = data
        rebuilt = graph.without([node]).with_node(node, graph.neighbours(node))
        assert rebuilt == graph
        assert rebuilt.edge_count == graph.edge_count

    @given(graph_and_node())
    @settings(max_examples=80, deadline=None)
    def test_with_node_adds_exactly_the_given_edges(self, data):
        graph, anchor = data
        newcomer = "fresh"
        neighbours = graph.neighbours(anchor) | {anchor}
        grown = graph.with_node(newcomer, neighbours)
        assert newcomer in grown
        assert grown.neighbours(newcomer) == frozenset(neighbours)
        assert grown.edge_count == graph.edge_count + len(neighbours)
        # The old adjacency is untouched except for the new edges.
        for node in graph.nodes:
            expected = graph.neighbours(node) | (
                {newcomer} if node in neighbours else frozenset()
            )
            assert grown.neighbours(node) == expected

    @given(graph_and_node())
    @settings(max_examples=40, deadline=None)
    def test_with_node_rejects_existing_and_unknown(self, data):
        graph, node = data
        try:
            graph.with_node(node, graph.neighbours(node))
            raise AssertionError("existing node accepted")
        except GraphError:
            pass
        try:
            graph.with_node("fresh", ["no-such-node"])
            raise AssertionError("unknown neighbour accepted")
        except GraphError:
            pass

    @given(graph_and_node())
    @settings(max_examples=40, deadline=None)
    def test_join_preserves_connectivity(self, data):
        graph, anchor = data
        grown = graph.with_node("fresh", [anchor])
        assert grown.is_connected()

    @given(graph_and_node())
    @settings(max_examples=40, deadline=None)
    def test_with_edges_creates_endpoints_and_is_idempotent(self, data):
        graph, anchor = data
        grown = graph.with_edges([(anchor, "fresh"), ("fresh", "fresh2")])
        assert "fresh" in grown and "fresh2" in grown
        assert grown.has_edge(anchor, "fresh")
        assert grown.edge_count == graph.edge_count + 2
        # Re-adding existing edges changes nothing.
        assert grown.with_edges([(anchor, "fresh")]) == grown
        # with_node is equivalent to with_edges for a single newcomer.
        assert graph.with_edges([("fresh", anchor)]).neighbours("fresh") == (
            graph.with_node("fresh", [anchor]).neighbours("fresh")
        )


class TestChurnProtocolInvariants:
    @given(graph_and_node(min_nodes=4, max_nodes=10), st.integers(0, 3))
    @settings(max_examples=25, deadline=None)
    def test_crash_recover_recrash_satisfies_epoch_specification(self, data, seed):
        graph, victim = data
        crashes, membership = crash_recover_recrash(
            graph, [victim], crash_at=1.0, recover_at=40.0, recrash_at=80.0
        )
        result = run_churn(graph, crashes, membership, seed=seed, check=True)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()
        # The victim's region is decided in both crash epochs.
        views = result.decided_view_multiset
        assert views.count((victim,)) >= 2 * len(graph.neighbours(victim))
