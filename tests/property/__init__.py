"""Property-based tests (hypothesis) for graph, ranking and protocol."""
