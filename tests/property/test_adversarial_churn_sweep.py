"""Adversarial churn property sweep: hypothesis-generated schedules.

The EXP-C1 extension as a property: random cascades racing random
membership schedules (recoveries of crashed nodes with short downtimes,
flash-crowd joins mid-cascade) must always satisfy the epoch-quotiented
CD1–CD7 specification and reach quiescence — on the deterministic
simulator *and* on the asyncio runtime.

This suite is what hardened the churn extension of the protocol: it
found stale-rejection poisoning of restarted instances, cross-attempt
message contamination, candidate starvation after knowledge
fragmentation, and purge-wiped pending candidates (see
``CliffEdgeNode``'s instance-generation machinery).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.churn import (
    MembershipSchedule,
    flash_crowd_joins,
    recover,
    run_churn,
    run_churn_asyncio,
)
from repro.experiments import random_churn_membership, run_churn_sweep_case
from repro.failures import CrashSchedule, cascade_crash
from repro.graph.generators import torus

from .test_graph_invariants import connected_graphs


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def churned_scenarios(draw, min_nodes=6, max_nodes=14):
    """A connected graph + cascade crashes + racing membership schedule."""
    graph = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    nodes = sorted(graph.nodes)
    start = draw(st.sampled_from(nodes))
    size = draw(st.integers(1, max(1, min(len(nodes) // 3, 4))))
    spacing = draw(st.floats(0.5, 3.0))
    crashes = cascade_crash(graph, start, size, start=1.0, spacing=spacing)

    # Recoveries: a random subset of the crashed nodes comes back after a
    # short downtime — racing the in-flight agreement on the cascade.
    last_crash = {}
    for node, time in crashes.crashes:
        last_crash[node] = max(time, last_crash.get(node, 0.0))
    events = []
    for node in sorted(last_crash, key=repr):
        if draw(st.booleans()):
            downtime = draw(st.floats(3.0, 20.0))
            events.append(recover(node, last_crash[node] + downtime))
    membership = MembershipSchedule(
        tuple(sorted(events, key=lambda e: (e.time, repr(e.node))))
    )

    # Joins: a small flash crowd arriving while the cascade unfolds.
    join_count = draw(st.integers(0, 2))
    if join_count:
        membership = membership.merged(
            flash_crowd_joins(
                graph,
                count=join_count,
                at=draw(st.floats(1.0, 6.0)),
                spacing=draw(st.floats(0.0, 1.5)),
                seed=draw(st.integers(0, 999)),
            )
        )
    return graph, crashes, membership


class TestAdversarialChurnSimulator:
    @given(churned_scenarios(), st.integers(0, 3))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_epoch_specification_holds(self, scenario, seed):
        graph, crashes, membership = scenario
        membership.validate(graph, crashes)
        result = run_churn(graph, crashes, membership, seed=seed, check=True)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()

    @given(st.integers(0, 2**20))
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_generator_based_cases_hold(self, seed):
        """The seed-driven EXP-C1 churn generator, across arbitrary seeds."""
        case = run_churn_sweep_case(seed)
        assert case.quiescent
        assert case.specification_holds, case.violations

    def test_random_churn_membership_always_validates(self):
        rng = random.Random(1234)
        graph = torus(5, 5)
        for _ in range(25):
            start = sorted(graph.nodes)[rng.randrange(len(graph))]
            crashes = cascade_crash(graph, start, rng.randint(1, 4), start=1.0)
            membership = random_churn_membership(rng, graph, crashes)
            membership.validate(graph, crashes)  # must never raise


class TestAdversarialChurnAsyncio:
    """The same adversarial shapes on the concurrent runtime.

    Wall-clock-bound (the asyncio runtime runs in scaled real time), so
    only a handful of examples; the heavier sim-side sweep above carries
    the case volume.
    """

    @given(churned_scenarios(min_nodes=6, max_nodes=9), st.integers(0, 1))
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_epoch_specification_holds_on_asyncio(self, scenario, seed):
        graph, crashes, membership = scenario
        membership.validate(graph, crashes)
        result = run_churn_asyncio(
            graph, crashes, membership, seed=seed, check=True, timeout=60.0
        )
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()


@pytest.mark.slow
class TestAdversarialChurnSweepDepth:
    """The deep sweep (CI's slow job): many seeds of the full generator."""

    def test_first_forty_seeds_hold(self):
        failing = []
        for seed in range(40):
            case = run_churn_sweep_case(seed)
            if not (case.specification_holds and case.quiescent):
                failing.append((seed, case.violations))
        assert not failing, failing
