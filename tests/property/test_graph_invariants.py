"""Property-based tests for the graph substrate (borders, components, regions)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import KnowledgeGraph, Region, faulty_clusters, faulty_domains


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
@st.composite
def connected_graphs(draw, min_nodes=2, max_nodes=14):
    """A connected undirected graph with integer node ids.

    Built as a random spanning tree plus random extra edges, so connectivity
    holds by construction.
    """
    size = draw(st.integers(min_nodes, max_nodes))
    edges: list[tuple[int, int]] = []
    for node in range(1, size):
        parent = draw(st.integers(0, node - 1))
        edges.append((parent, node))
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)).filter(
                lambda pair: pair[0] != pair[1]
            ),
            max_size=size,
        )
    )
    edges.extend(extra)
    return KnowledgeGraph(edges, nodes=range(size))


@st.composite
def graph_and_subset(draw):
    graph = draw(connected_graphs())
    nodes = sorted(graph.nodes)
    subset = draw(st.sets(st.sampled_from(nodes), max_size=len(nodes)))
    return graph, frozenset(subset)


# ---------------------------------------------------------------------------
# Border properties
# ---------------------------------------------------------------------------
class TestBorderProperties:
    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_border_disjoint_from_set(self, data):
        graph, subset = data
        assert graph.border(subset).isdisjoint(subset)

    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_border_members_have_neighbour_inside(self, data):
        graph, subset = data
        for node in graph.border(subset):
            assert graph.neighbours(node) & subset

    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_outside_nodes_with_inside_neighbour_are_border(self, data):
        graph, subset = data
        for node in graph.nodes - subset:
            if graph.neighbours(node) & subset:
                assert node in graph.border(subset)

    @given(graph_and_subset())
    @settings(max_examples=50, deadline=None)
    def test_closed_neighbourhood_superset(self, data):
        graph, subset = data
        scope = graph.closed_neighbourhood(subset)
        assert subset <= scope
        assert graph.border(subset) <= scope


class TestComponentProperties:
    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_components_partition_the_subset(self, data):
        graph, subset = data
        components = graph.connected_components(subset)
        union: set = set()
        for component in components:
            assert not union & component  # pairwise disjoint
            union |= component
        assert union == subset

    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_each_component_is_connected(self, data):
        graph, subset = data
        for component in graph.connected_components(subset):
            assert graph.is_connected_subset(component)

    @given(graph_and_subset())
    @settings(max_examples=80, deadline=None)
    def test_components_are_maximal(self, data):
        graph, subset = data
        components = graph.connected_components(subset)
        for component in components:
            # No node outside the component (but in the subset) is adjacent
            # to it; otherwise the component would not be maximal.
            border_in_subset = graph.border(component) & subset
            assert not border_in_subset

    @given(graph_and_subset())
    @settings(max_examples=50, deadline=None)
    def test_whole_subset_connected_iff_single_component(self, data):
        graph, subset = data
        components = graph.connected_components(subset)
        if subset:
            assert graph.is_connected_subset(subset) == (len(components) == 1)
        else:
            assert components == frozenset()


class TestFaultyDomainProperties:
    @given(graph_and_subset())
    @settings(max_examples=60, deadline=None)
    def test_domains_equal_components(self, data):
        graph, faulty = data
        domains = faulty_domains(graph, faulty)
        assert {domain.members for domain in domains} == set(
            graph.connected_components(faulty)
        )

    @given(graph_and_subset())
    @settings(max_examples=60, deadline=None)
    def test_domain_borders_are_correct_nodes(self, data):
        graph, faulty = data
        for domain in faulty_domains(graph, faulty):
            assert domain.border(graph).isdisjoint(faulty)

    @given(graph_and_subset())
    @settings(max_examples=60, deadline=None)
    def test_clusters_partition_domains(self, data):
        graph, faulty = data
        domains = faulty_domains(graph, faulty)
        clusters = faulty_clusters(graph, faulty)
        seen: set[Region] = set()
        for cluster in clusters:
            for domain in cluster:
                assert domain not in seen
                seen.add(domain)
        assert seen == set(domains)

    @given(graph_and_subset())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_preserves_membership(self, data):
        graph, subset = data
        sub = graph.subgraph(subset)
        assert sub.nodes == subset
        for u, v in sub.edges():
            assert graph.has_edge(u, v)
