"""Test support utilities shared across unit, integration and property tests."""

from __future__ import annotations

from typing import Any

from repro.graph import KnowledgeGraph, NodeId
from repro.sim.events import EventKind, TraceEvent


class FakeContext:
    """A hand-driven :class:`~repro.sim.process.ProcessContext`.

    Used by the protocol unit tests to feed events to a single
    :class:`~repro.core.protocol.CliffEdgeNode` and observe exactly what it
    sends, monitors and records — without any simulator in the loop.
    """

    def __init__(self, graph: KnowledgeGraph, node_id: NodeId, time: float = 0.0) -> None:
        self.graph = graph
        self.node_id = node_id
        self.time = time
        #: every point-to-point send as (target, message)
        self.sent: list[tuple[NodeId, Any]] = []
        #: every multicast as (tuple-of-targets, message)
        self.multicasts: list[tuple[tuple[NodeId, ...], Any]] = []
        #: union of all monitored nodes
        self.monitored: set[NodeId] = set()
        #: (delay, tag) pairs of requested timers
        self.timers: list[tuple[float, Any]] = []
        #: protocol-level trace events recorded by the process
        self.records: list[TraceEvent] = []

    # -- ProcessContext API -------------------------------------------------
    def now(self) -> float:
        return self.time

    def send(self, target: NodeId, message: Any) -> None:
        self.sent.append((target, message))

    def multicast(self, targets, message: Any) -> None:
        target_tuple = tuple(targets)
        self.multicasts.append((target_tuple, message))
        for target in target_tuple:
            self.sent.append((target, message))

    def monitor_crash(self, targets) -> None:
        self.monitored.update(targets)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        self.timers.append((delay, tag))

    def record(self, kind: EventKind, payload=None, peer=None, **detail) -> None:
        self.records.append(
            TraceEvent(
                time=self.time,
                kind=kind,
                node=self.node_id,
                peer=peer,
                payload=payload,
                detail=detail,
            )
        )

    # -- helpers -------------------------------------------------------------
    def recorded_kinds(self) -> list[EventKind]:
        return [event.kind for event in self.records]

    def last_multicast(self) -> tuple[tuple[NodeId, ...], Any]:
        if not self.multicasts:
            raise AssertionError("no multicast was issued")
        return self.multicasts[-1]

    def clear(self) -> None:
        self.sent.clear()
        self.multicasts.clear()
        self.records.clear()


def deliver_own_multicast(node, ctx: FakeContext, index: int = -1) -> None:
    """Deliver a node's own multicast back to itself (self-delivery).

    The protocol relies on the best-effort multicast looping back to the
    sender; in simulator runs the network does it, in these unit tests the
    helper does.
    """
    targets, message = ctx.multicasts[index]
    if ctx.node_id in targets:
        node.on_message(ctx, ctx.node_id, message)
