"""Unit tests for the region ranking relation (§3.1)."""

from __future__ import annotations

import pytest

from repro.graph import (
    DEFAULT_RANKING,
    RANKINGS,
    CanonicalRanking,
    KnowledgeGraph,
    Region,
    SizeBorderRanking,
    SizeOnlyRanking,
    max_ranked_region,
    region_precedes,
)
from repro.graph.generators import grid


@pytest.fixture
def ranking_graph() -> KnowledgeGraph:
    """A graph with regions of controlled sizes and border sizes.

    - {a1} and {b1} are singletons with different border sizes.
    - {a1, a2} is a two-node region.
    - {c1} and {c2} are singletons with identical border sizes (tie-break).
    """
    return KnowledgeGraph(
        [
            ("a1", "a2"),
            ("a1", "p1"),
            ("a1", "p2"),
            ("a2", "p3"),
            ("b1", "p1"),
            ("c1", "p2"),
            ("c2", "p3"),
            ("p1", "p2"),
            ("p2", "p3"),
        ]
    )


class TestCanonicalRanking:
    def test_larger_region_outranks(self, ranking_graph):
        small = Region(frozenset({"a1"}))
        large = Region(frozenset({"a1", "a2"}))
        assert region_precedes(ranking_graph, small, large)
        assert not region_precedes(ranking_graph, large, small)

    def test_equal_size_larger_border_outranks(self, ranking_graph):
        # a1 has neighbours {a2, p1, p2} -> border of {a1} has 3 nodes;
        # b1 has a single neighbour -> border of {b1} has 1 node.
        rich = Region(frozenset({"a1"}))
        poor = Region(frozenset({"b1"}))
        assert region_precedes(ranking_graph, poor, rich)
        assert not region_precedes(ranking_graph, rich, poor)

    def test_tie_break_is_deterministic_and_antisymmetric(self, ranking_graph):
        first = Region(frozenset({"c1"}))
        second = Region(frozenset({"c2"}))
        forwards = region_precedes(ranking_graph, first, second)
        backwards = region_precedes(ranking_graph, second, first)
        assert forwards != backwards

    def test_irreflexive(self, ranking_graph):
        region = Region(frozenset({"a1"}))
        assert not region_precedes(ranking_graph, region, region)

    def test_subsumes_set_inclusion(self):
        """A strict superset always outranks its subsets (used by Theorem 4)."""
        graph = grid(4, 4)
        small = Region(frozenset({(1, 1)}))
        medium = Region(frozenset({(1, 1), (1, 2)}))
        large = Region(frozenset({(1, 1), (1, 2), (2, 2)}))
        assert region_precedes(graph, small, medium)
        assert region_precedes(graph, medium, large)
        assert region_precedes(graph, small, large)

    def test_max_ranked_region(self, ranking_graph):
        regions = [
            Region(frozenset({"b1"})),
            Region(frozenset({"a1", "a2"})),
            Region(frozenset({"c1"})),
        ]
        best = max_ranked_region(ranking_graph, regions)
        assert best.members == frozenset({"a1", "a2"})

    def test_max_ranked_region_empty_raises(self, ranking_graph):
        with pytest.raises(ValueError):
            max_ranked_region(ranking_graph, [])

    def test_key_orders_like_precedes(self, ranking_graph):
        ranking = CanonicalRanking()
        regions = [
            Region(frozenset({"b1"})),
            Region(frozenset({"a1"})),
            Region(frozenset({"a1", "a2"})),
        ]
        ordered = sorted(regions, key=lambda r: ranking.key(ranking_graph, r))
        for lower, higher in zip(ordered, ordered[1:]):
            assert ranking.precedes(ranking_graph, lower, higher)


class TestAblationRankings:
    def test_registry_contains_all_variants(self):
        assert set(RANKINGS) == {"canonical", "size-only", "size-border"}
        assert DEFAULT_RANKING.name == "canonical"

    def test_size_only_ignores_border(self, ranking_graph):
        ranking = SizeOnlyRanking()
        rich = Region(frozenset({"a1"}))
        poor = Region(frozenset({"b1"}))
        assert not ranking.precedes(ranking_graph, poor, rich)
        assert not ranking.precedes(ranking_graph, rich, poor)

    def test_size_only_still_orders_sizes(self, ranking_graph):
        ranking = SizeOnlyRanking()
        small = Region(frozenset({"a1"}))
        large = Region(frozenset({"a1", "a2"}))
        assert ranking.precedes(ranking_graph, small, large)

    def test_size_border_breaks_fewer_ties(self, ranking_graph):
        ranking = SizeBorderRanking()
        first = Region(frozenset({"c1"}))
        second = Region(frozenset({"c2"}))
        # identical size and border size -> incomparable under this variant
        assert not ranking.precedes(ranking_graph, first, second)
        assert not ranking.precedes(ranking_graph, second, first)

    def test_ablation_max_ranked_is_deterministic(self, ranking_graph):
        regions = [Region(frozenset({"c1"})), Region(frozenset({"c2"}))]
        for ranking in RANKINGS.values():
            first = ranking.max_ranked(ranking_graph, regions)
            second = ranking.max_ranked(ranking_graph, list(reversed(regions)))
            assert first == second
