"""Unit tests for the virtual-time asyncio event loop.

The loop's contract is twofold: the *asyncio* contract (sleeps, timers,
tasks and futures behave as on any event loop) and the *determinism*
contract (callback order is a pure function of causal structure, timer
ties break by genealogical key, time only moves when the schedule says
so).  These tests pin both, plus the edge cases the ISSUE calls out:
cancellation mid-sleep, ``wait_for`` at the exact virtual deadline,
``call_at`` ties, and nested ``create_task`` ordering.
"""

from __future__ import annotations

import asyncio
import contextlib

import pytest

from repro.vtime import VirtualClockEventLoop, VirtualTimeDeadlock, VirtualTimeError


@pytest.fixture()
def loop():
    loop = VirtualClockEventLoop()
    yield loop
    # Deliver cancellation to tasks a failing test abandoned (budget
    # exhaustion, propagated callback errors) so their later GC does not
    # spray "pending task" warnings over the suite output.
    pending = asyncio.all_tasks(loop)
    for task in pending:
        task.cancel()
    for task in pending:
        with contextlib.suppress(BaseException):
            loop.run_until_complete(task)
    loop.close()


class TestClockBasics:
    def test_time_starts_at_zero(self, loop):
        assert loop.time() == 0.0

    def test_sleep_advances_virtual_time_only(self, loop):
        async def main():
            start = loop.time()
            await asyncio.sleep(7.5)
            return loop.time() - start

        assert loop.run_until_complete(main()) == 7.5

    def test_nested_sleeps_accumulate(self, loop):
        async def main():
            await asyncio.sleep(1.0)
            await asyncio.sleep(2.0)
            return loop.time()

        assert loop.run_until_complete(main()) == 3.0

    def test_negative_delay_clamps_to_now(self, loop):
        async def main():
            await asyncio.sleep(-5.0)
            return loop.time()

        assert loop.run_until_complete(main()) == 0.0

    def test_call_at_in_the_past_fires_at_now(self, loop):
        fired = []

        async def main():
            await asyncio.sleep(10.0)
            loop.call_at(3.0, lambda: fired.append(loop.time()))
            await asyncio.sleep(0.0)

        loop.run_until_complete(main())
        assert fired == [10.0]


class TestCancellation:
    def test_cancel_mid_sleep(self, loop):
        """Cancelling a sleeping task wakes it with CancelledError and
        removes the timer from the scheduler."""

        async def sleeper():
            await asyncio.sleep(100.0)

        async def main():
            task = loop.create_task(sleeper())
            await asyncio.sleep(1.0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            return loop.time()

        # Time stops at the cancellation point; the dead timer at t=100
        # must not drag the clock forward.
        assert loop.run_until_complete(main()) == 1.0
        assert loop.scheduler.is_idle()

    def test_timer_handle_cancel_before_fire(self, loop):
        fired = []
        handle = loop.call_later(5.0, lambda: fired.append("no"))
        handle.cancel()

        async def main():
            await asyncio.sleep(10.0)

        loop.run_until_complete(main())
        assert fired == []

    def test_wait_for_timeout_at_exact_deadline(self, loop):
        """A waiter whose timeout equals the awaited sleep is a virtual-
        time tie; asyncio resolves it against the waiter (TimeoutError)
        and the loop must do so deterministically."""

        async def main():
            try:
                await asyncio.wait_for(asyncio.sleep(3.0), timeout=3.0)
            except asyncio.TimeoutError:
                return ("timeout", loop.time())
            return ("completed", loop.time())

        outcome = loop.run_until_complete(main())
        assert outcome[1] == 3.0
        # Pin the tie-break itself: the result must be identical on a
        # fresh loop, whatever it is.
        relooped = VirtualClockEventLoop()
        try:
            assert relooped.run_until_complete(main()) == outcome
        finally:
            relooped.close()

    def test_wait_for_completes_before_deadline(self, loop):
        async def main():
            await asyncio.wait_for(asyncio.sleep(1.0), timeout=2.0)
            return loop.time()

        assert loop.run_until_complete(main()) == 1.0


class TestOrdering:
    def test_call_at_ties_fire_in_schedule_order(self, loop):
        """Two timers at the same virtual instant fire in the order they
        were scheduled (genealogical keys, not heap arrival order)."""
        order = []
        loop.call_at(5.0, lambda: order.append("first"))
        loop.call_at(5.0, lambda: order.append("second"))
        loop.call_at(2.0, lambda: order.append("early"))

        async def main():
            await asyncio.sleep(10.0)

        loop.run_until_complete(main())
        assert order == ["early", "first", "second"]

    def test_call_soon_fifo(self, loop):
        order = []
        for index in range(5):
            loop.call_soon(order.append, index)

        async def main():
            await asyncio.sleep(0.0)

        loop.run_until_complete(main())
        assert order == [0, 1, 2, 3, 4]

    def test_nested_create_task_ordering(self, loop):
        """Children spawned by one parent run in spawn order, and the
        whole interleaving is reproducible run over run."""

        async def child(log, name, naps):
            running = asyncio.get_running_loop()
            for nap in naps:
                await asyncio.sleep(nap)
                log.append((running.time(), name))

        async def main():
            running = asyncio.get_running_loop()
            log = []
            outer = [
                running.create_task(child(log, "a", [2.0, 2.0])),
                running.create_task(child(log, "b", [1.0, 3.0])),
            ]
            # A task spawned *from* a task (nested genealogy).
            async def spawner():
                inner = asyncio.get_running_loop().create_task(
                    child(log, "c", [2.0])
                )
                await inner

            outer.append(running.create_task(spawner()))
            await asyncio.gather(*outer)
            return log

        first = loop.run_until_complete(main())
        second_loop = VirtualClockEventLoop()
        try:
            second = second_loop.run_until_complete(main())
        finally:
            second_loop.close()
        assert first == second
        # Same-instant wakeups (a and c both at t=2.0) follow spawn order.
        assert first[first.index((2.0, "a")) + 1] == (2.0, "c")

    def test_queue_producer_consumer(self, loop):
        async def main():
            queue = asyncio.Queue()
            seen = []

            async def producer():
                for index in range(3):
                    await asyncio.sleep(1.0)
                    await queue.put(index)

            async def consumer():
                for _ in range(3):
                    value = await queue.get()
                    seen.append((loop.time(), value))

            await asyncio.gather(producer(), consumer())
            return seen

        assert loop.run_until_complete(main()) == [(1.0, 0), (2.0, 1), (3.0, 2)]


class TestLifecycleAndFailure:
    def test_deadlock_detected(self, loop):
        async def main():
            await loop.create_future()  # nothing will ever resolve it

        with pytest.raises(VirtualTimeDeadlock):
            loop.run_until_complete(main())

    def test_event_budget(self, loop):
        async def main():
            while True:
                await asyncio.sleep(1.0)

        with pytest.raises(VirtualTimeError, match="budget"):
            loop.run_until_complete(main(), max_events=10)

    def test_callback_exceptions_propagate(self, loop):
        def boom():
            raise RuntimeError("deterministic failure")

        loop.call_soon(boom)

        async def main():
            await asyncio.sleep(1.0)

        with pytest.raises(RuntimeError, match="deterministic failure"):
            loop.run_until_complete(main())

    def test_close_refused_while_running(self, loop):
        async def main():
            with pytest.raises(VirtualTimeError):
                loop.close()

        loop.run_until_complete(main())

    def test_get_running_loop_inside(self, loop):
        async def main():
            return asyncio.get_running_loop()

        assert loop.run_until_complete(main()) is loop

    def test_processed_events_counts(self, loop):
        async def main():
            await asyncio.sleep(1.0)

        loop.run_until_complete(main())
        assert loop.processed_events > 0
