"""Unit tests for the CliffEdgeNode state machine (Algorithm 1).

These tests drive a single protocol node by hand through a
:class:`tests.support.FakeContext`, checking each block of the pseudocode
in isolation: view construction (lines 5-11), instance start (12-17),
opinion updates (18-25), rejection (26-31) and round completion / decision
(32-40).
"""

from __future__ import annotations

import pytest

from repro.core import (
    REJECT,
    Accept,
    CliffEdgeNode,
    ConstantValuePolicy,
    ProtocolError,
    RoundMessage,
)
from repro.graph import KnowledgeGraph, Region
from repro.sim import EventKind

from tests.support import FakeContext, deliver_own_multicast


@pytest.fixture
def line_graph():
    return KnowledgeGraph([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])


@pytest.fixture
def star_graph():
    """x is surrounded by p, q, r (border of {x} has three nodes)."""
    return KnowledgeGraph([("x", "p"), ("x", "q"), ("x", "r"), ("p", "q"), ("q", "r")])


def make_node(node_id, **kwargs):
    return CliffEdgeNode(node_id, decision_policy=ConstantValuePolicy("act"), **kwargs)


class TestStartup:
    def test_on_start_monitors_own_border(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        assert ctx.monitored == {"a", "c"}

    def test_initial_state(self, line_graph):
        node = make_node("b")
        assert node.decided is None
        assert node.proposed is None
        assert not node.has_decided
        assert node.known_crashed_region() == frozenset()
        assert "idle" in node.describe_state()


class TestViewConstruction:
    def test_crash_updates_local_view_and_monitoring(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        assert node.known_crashed_region() == frozenset({"c"})
        # border(c) = {b, d}; b and already-crashed nodes are excluded.
        assert "d" in ctx.monitored
        assert node.max_view == Region(frozenset({"c"}))

    def test_own_crash_notification_is_a_bug(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        with pytest.raises(ProtocolError):
            node.on_crash(ctx, "b")

    def test_duplicate_crash_notification_ignored(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        proposals_before = node.instances_started
        node.on_crash(ctx, "c")
        assert node.instances_started == proposals_before

    def test_growing_region_raises_max_view(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        node.on_crash(ctx, "d")
        assert node.max_view == Region(frozenset({"c", "d"}))
        assert node.known_crashed_region() == frozenset({"c", "d"})

    def test_disjoint_components_pick_highest_ranked(self, line_graph):
        node = make_node("c")
        ctx = FakeContext(line_graph, "c")
        node.on_start(ctx)
        node.on_crash(ctx, "b")
        node.on_crash(ctx, "d")
        # {b} and {d} are disjoint singletons; the ranking breaks the tie
        # deterministically, and the proposal is one of the two.
        assert node.max_view.members in ({"b"}, {"d"})
        assert len(node.max_view) == 1


class TestInstanceStart:
    def test_proposal_multicast_to_border(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        targets, message = ctx.last_multicast()
        assert set(targets) == {"b", "d"}
        assert isinstance(message, RoundMessage)
        assert message.round == 1
        assert message.view == Region(frozenset({"c"}))
        assert message.border == frozenset({"b", "d"})
        assert message.opinions["b"] == Accept("act")
        assert message.opinions["d"] is None
        assert node.proposed == "act"
        assert node.instances_started == 1

    def test_proposed_event_recorded(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        assert EventKind.VIEW_PROPOSED in ctx.recorded_kinds()

    def test_no_second_proposal_while_instance_active(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        node.on_crash(ctx, "d")
        # The bigger candidate is queued but not proposed yet (line 12 needs
        # proposed = ⊥, which only happens after the current instance ends).
        assert node.instances_started == 1
        assert node.candidate_view == Region(frozenset({"c", "d"}))


class TestSingleBorderInstance:
    def test_single_border_node_decides_alone(self, line_graph):
        """|border(V)| = 1: the edge case the paper's pseudocode glosses over."""
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "a")
        targets, _ = ctx.last_multicast()
        assert set(targets) == {"b"}
        deliver_own_multicast(node, ctx)
        assert node.has_decided
        assert node.decided_view == Region(frozenset({"a"}))
        assert node.decided == "act"


class TestDecision:
    def test_two_border_nodes_decide_after_one_round(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        deliver_own_multicast(node, ctx)
        assert not node.has_decided
        view = Region(frozenset({"c"}))
        border = frozenset({"b", "d"})
        node.on_message(
            ctx, "d", RoundMessage(1, view, border, {"d": Accept("act"), "b": None})
        )
        assert node.has_decided
        assert node.decided_view == view
        decided_events = [e for e in ctx.records if e.kind is EventKind.DECIDED]
        assert len(decided_events) == 1
        assert decided_events[0].payload == view

    def test_on_decide_callback(self, line_graph):
        calls = []
        node = CliffEdgeNode(
            "b",
            decision_policy=ConstantValuePolicy("act"),
            on_decide=lambda view, value: calls.append((view, value)),
        )
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "a")
        deliver_own_multicast(node, ctx)
        assert calls == [(Region(frozenset({"a"})), "act")]

    def test_decided_node_never_proposes_again(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "a")
        deliver_own_multicast(node, ctx)
        assert node.has_decided
        started = node.instances_started
        node.on_crash(ctx, "c")
        assert node.instances_started == started
        assert node.candidate_view is not None  # view construction continues

    def test_deterministic_pick_over_received_values(self, star_graph):
        """The decision value is picked from the full accept vector."""
        node = CliffEdgeNode("p")  # default coordinator-election policy
        ctx = FakeContext(star_graph, "p")
        node.on_start(ctx)
        node.on_crash(ctx, "x")
        deliver_own_multicast(node, ctx)
        view = Region(frozenset({"x"}))
        border = frozenset({"p", "q", "r"})
        own = node.proposed
        q_value, r_value = object(), object()
        from repro.core import ProposedRepair

        q_value = ProposedRepair(coordinator="q", view=view)
        r_value = ProposedRepair(coordinator="r", view=view)
        node.on_message(
            ctx, "q", RoundMessage(1, view, border, {"q": Accept(q_value)})
        )
        node.on_message(
            ctx, "r", RoundMessage(1, view, border, {"r": Accept(r_value)})
        )
        # Round 1 is complete; p multicasts round 2 — deliver it to itself,
        # then relay q's and r's round-2 messages.
        deliver_own_multicast(node, ctx)
        full = {"p": Accept(own), "q": Accept(q_value), "r": Accept(r_value)}
        node.on_message(ctx, "q", RoundMessage(2, view, border, full))
        node.on_message(ctx, "r", RoundMessage(2, view, border, full))
        assert node.has_decided
        # 'p' < 'q' < 'r' by repr, so the coordinator elected is p itself.
        assert node.decided.coordinator == "p"


class TestRounds:
    def test_three_border_nodes_need_two_rounds(self, star_graph):
        node = make_node("p")
        ctx = FakeContext(star_graph, "p")
        node.on_start(ctx)
        node.on_crash(ctx, "x")
        deliver_own_multicast(node, ctx)
        view = Region(frozenset({"x"}))
        border = frozenset({"p", "q", "r"})
        node.on_message(ctx, "q", RoundMessage(1, view, border, {"q": Accept("act")}))
        assert node.round == 1
        node.on_message(ctx, "r", RoundMessage(1, view, border, {"r": Accept("act")}))
        # Round 1 complete -> round 2 multicast goes out, carrying the
        # accumulated round-1 vector.
        assert node.round == 2
        targets, message = ctx.last_multicast()
        assert message.round == 2
        assert set(message.opinions) == {"p", "q", "r"}
        assert not node.has_decided

    def test_round_completed_event(self, star_graph):
        node = make_node("p")
        ctx = FakeContext(star_graph, "p")
        node.on_start(ctx)
        node.on_crash(ctx, "x")
        deliver_own_multicast(node, ctx)
        view = Region(frozenset({"x"}))
        border = frozenset({"p", "q", "r"})
        node.on_message(ctx, "q", RoundMessage(1, view, border, {"q": Accept("act")}))
        node.on_message(ctx, "r", RoundMessage(1, view, border, {"r": Accept("act")}))
        assert EventKind.ROUND_COMPLETED in ctx.recorded_kinds()

    def test_crashed_participants_not_waited_for(self, star_graph):
        node = make_node("p")
        ctx = FakeContext(star_graph, "p")
        node.on_start(ctx)
        node.on_crash(ctx, "x")
        deliver_own_multicast(node, ctx)
        view = Region(frozenset({"x"}))
        border = frozenset({"p", "q", "r"})
        node.on_message(ctx, "q", RoundMessage(1, view, border, {"q": Accept("act")}))
        # r crashes; p no longer waits for it and completes round 1, but the
        # final vector still has ⊥ for r, so the instance eventually fails
        # rather than deciding without r's opinion.
        node.on_crash(ctx, "r")
        assert node.round == 2
        node.on_message(
            ctx,
            "q",
            RoundMessage(2, view, border, {"q": Accept("act"), "p": Accept("act")}),
        )
        deliver_own_multicast(node, ctx)
        assert not node.has_decided
        assert node.instances_failed == 1
        # r's crash also grew the locally known region to {x, r}, so the
        # failed instance is immediately followed by a proposal of that
        # bigger view (lines 37 then 12).
        assert node.instances_started == 2
        assert node.current_view == Region(frozenset({"x", "r"}))


class TestRejection:
    @pytest.fixture
    def conflict_graph(self):
        """x has border {p, q, r}; y has border {p, s}.

        When both crash, a node proposing {x} outranks {y} (same size,
        bigger border), so p must reject s's proposal of {y}.
        """
        return KnowledgeGraph(
            [("x", "p"), ("x", "q"), ("x", "r"), ("y", "p"), ("y", "s"), ("q", "s")]
        )

    def _propose_x_then_receive_y(self, conflict_graph):
        node = make_node("p")
        ctx = FakeContext(conflict_graph, "p")
        node.on_start(ctx)
        node.on_crash(ctx, "x")
        assert node.current_view == Region(frozenset({"x"}))
        lower_view = Region(frozenset({"y"}))
        lower_border = conflict_graph.border(lower_view.members)
        ctx.clear()
        node.on_message(
            ctx, "s", RoundMessage(1, lower_view, lower_border, {"s": Accept("act")})
        )
        return node, ctx, lower_view, lower_border

    def test_lower_ranked_received_view_is_rejected(self, conflict_graph):
        node, ctx, lower_view, lower_border = self._propose_x_then_receive_y(conflict_graph)
        targets, message = ctx.last_multicast()
        assert set(targets) == set(lower_border)
        assert message.view == lower_view
        assert message.opinions["p"] is REJECT
        assert lower_view in node.rejected
        assert lower_view not in node.received
        assert EventKind.VIEW_REJECTED in ctx.recorded_kinds()

    def test_rejected_view_messages_ignored(self, conflict_graph):
        node, ctx, lower_view, lower_border = self._propose_x_then_receive_y(conflict_graph)
        ctx.clear()
        node.on_message(
            ctx, "s", RoundMessage(1, lower_view, lower_border, {"s": Accept("act")})
        )
        assert ctx.multicasts == []
        assert lower_view not in node.received
        assert lower_view in node.rejected

    def test_equal_or_higher_views_not_rejected(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        bigger_view = Region(frozenset({"c", "d"}))
        bigger_border = line_graph.border(bigger_view.members)
        ctx.clear()
        node.on_message(ctx, "e", RoundMessage(1, bigger_view, bigger_border, {}))
        assert bigger_view in node.received
        assert bigger_view not in node.rejected
        # No rejection multicast was sent for it.
        assert all(message.view != bigger_view or not message.is_rejection()
                   for _, message in ctx.multicasts)

    def test_arbitration_can_be_disabled(self, line_graph):
        node = make_node("c", arbitration_enabled=False)
        ctx = FakeContext(line_graph, "c")
        node.on_start(ctx)
        node.on_crash(ctx, "b")
        node.on_crash(ctx, "d")
        other_member = ({"b", "d"} - set(node.current_view.members)).pop()
        other_view = Region(frozenset({other_member}))
        other_border = line_graph.border(other_view.members)
        ctx.clear()
        node.on_message(ctx, min(other_border, key=repr), RoundMessage(1, other_view, other_border, {}))
        assert other_view in node.received
        assert other_view not in node.rejected

    def test_incoming_reject_fails_the_instance(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        deliver_own_multicast(node, ctx)
        view = Region(frozenset({"c"}))
        border = frozenset({"b", "d"})
        node.on_message(ctx, "d", RoundMessage(1, view, border, {"d": REJECT}))
        assert not node.has_decided
        assert node.proposed is None
        assert node.instances_failed == 1
        assert EventKind.INSTANCE_FAILED in ctx.recorded_kinds()

    def test_failed_instance_retries_with_bigger_candidate(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        node.on_crash(ctx, "c")
        deliver_own_multicast(node, ctx)
        # A bigger crashed region becomes known while the instance runs.
        node.on_crash(ctx, "d")
        view = Region(frozenset({"c"}))
        border = frozenset({"b", "d"})
        node.on_message(ctx, "d", RoundMessage(1, view, border, {"d": REJECT}))
        # The failed instance is immediately followed by a proposal of the
        # bigger candidate view {c, d}.
        assert node.proposed is not None
        assert node.current_view == Region(frozenset({"c", "d"}))
        assert node.instances_started == 2


class TestMessageValidation:
    def test_non_round_message_rejected(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        with pytest.raises(ProtocolError):
            node.on_message(ctx, "a", "not-a-protocol-message")

    def test_out_of_range_round_rejected(self, line_graph):
        node = make_node("b")
        ctx = FakeContext(line_graph, "b")
        node.on_start(ctx)
        view = Region(frozenset({"c"}))
        border = frozenset({"b", "d"})
        with pytest.raises(ProtocolError):
            node.on_message(ctx, "d", RoundMessage(5, view, border, {}))
