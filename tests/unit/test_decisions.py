"""Unit tests for decision policies (selectValueForView / deterministicPick)."""

from __future__ import annotations

import pytest

from repro.core import (
    CallbackPolicy,
    ConstantValuePolicy,
    CoordinatorElectionPolicy,
    ProposedRepair,
)
from repro.graph import Region
from repro.graph.generators import grid


@pytest.fixture
def view_and_graph():
    graph = grid(4, 4)
    view = Region(frozenset({(1, 1), (1, 2)}))
    return graph, view


class TestCoordinatorElectionPolicy:
    def test_select_value_names_proposer(self, view_and_graph):
        graph, view = view_and_graph
        policy = CoordinatorElectionPolicy()
        value = policy.select_value(graph, view, (0, 1))
        assert isinstance(value, ProposedRepair)
        assert value.coordinator == (0, 1)
        assert value.view == view

    def test_pick_is_deterministic_in_contents(self, view_and_graph):
        graph, view = view_and_graph
        policy = CoordinatorElectionPolicy()
        values = {
            (2, 1): policy.select_value(graph, view, (2, 1)),
            (0, 1): policy.select_value(graph, view, (0, 1)),
            (1, 0): policy.select_value(graph, view, (1, 0)),
        }
        reordered = dict(reversed(list(values.items())))
        assert policy.pick(graph, view, values) == policy.pick(graph, view, reordered)

    def test_pick_elects_smallest_proposer(self, view_and_graph):
        graph, view = view_and_graph
        policy = CoordinatorElectionPolicy()
        values = {
            (2, 1): policy.select_value(graph, view, (2, 1)),
            (0, 1): policy.select_value(graph, view, (0, 1)),
        }
        assert policy.pick(graph, view, values).coordinator == (0, 1)

    def test_pick_empty_rejected(self, view_and_graph):
        graph, view = view_and_graph
        with pytest.raises(ValueError):
            CoordinatorElectionPolicy().pick(graph, view, {})

    def test_proposed_repair_describe(self, view_and_graph):
        graph, view = view_and_graph
        value = CoordinatorElectionPolicy().select_value(graph, view, (0, 1))
        assert "coordinates recovery" in value.describe()


class TestConstantValuePolicy:
    def test_always_same_value(self, view_and_graph):
        graph, view = view_and_graph
        policy = ConstantValuePolicy("fixed")
        assert policy.select_value(graph, view, (0, 1)) == "fixed"
        assert policy.pick(graph, view, {(0, 1): "fixed", (2, 1): "fixed"}) == "fixed"

    def test_pick_deterministic_across_values(self, view_and_graph):
        graph, view = view_and_graph
        policy = ConstantValuePolicy()
        values = {(0, 1): "b", (2, 1): "a"}
        assert policy.pick(graph, view, values) == "a"

    def test_pick_empty_rejected(self, view_and_graph):
        graph, view = view_and_graph
        with pytest.raises(ValueError):
            ConstantValuePolicy().pick(graph, view, {})


class TestCallbackPolicy:
    def test_delegates_to_callables(self, view_and_graph):
        graph, view = view_and_graph
        policy = CallbackPolicy(
            select_value=lambda g, v, node: f"value-from-{node}",
            pick=lambda g, v, values: sorted(values.values())[0],
        )
        assert policy.select_value(graph, view, "n") == "value-from-n"
        assert policy.pick(graph, view, {"a": "z", "b": "a"}) == "a"
