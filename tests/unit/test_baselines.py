"""Unit tests for the three baselines (global consensus, gossip, uncoordinated)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    run_global_baseline,
    run_gossip_baseline,
    run_uncoordinated_baseline,
)
from repro.failures import region_crash
from repro.graph.generators import grid, torus
from repro.trace import communicating_nodes


@pytest.fixture
def baseline_graph():
    return grid(5, 5)


@pytest.fixture
def baseline_schedule(baseline_graph):
    return region_crash(baseline_graph, [(2, 2), (2, 3)], at=1.0)


class TestGlobalBaseline:
    def test_all_correct_nodes_decide_the_crash_map(self, baseline_graph, baseline_schedule):
        result = run_global_baseline(baseline_graph, baseline_schedule)
        assert result.agreed
        assert result.decided_map == frozenset({(2, 2), (2, 3)})
        # Every correct node participates and decides.
        assert len(result.decisions) == len(baseline_graph) - 2

    def test_whole_network_speaks(self, baseline_graph, baseline_schedule):
        result = run_global_baseline(baseline_graph, baseline_schedule)
        assert result.metrics.speaking_nodes >= len(baseline_graph) - 2

    def test_cost_grows_with_system_size(self):
        small_graph = torus(4, 4)
        big_graph = torus(6, 6)
        small = run_global_baseline(small_graph, region_crash(small_graph, [(1, 1)], at=1.0))
        big = run_global_baseline(big_graph, region_crash(big_graph, [(1, 1)], at=1.0))
        assert big.metrics.messages_sent > small.metrics.messages_sent * 2

    def test_no_crash_no_consensus(self, baseline_graph):
        from repro.failures import CrashSchedule

        result = run_global_baseline(baseline_graph, CrashSchedule())
        assert result.decisions == {}
        assert result.decided_map is None
        assert result.agreed


class TestGossipBaseline:
    def test_converges_to_common_view(self, baseline_graph, baseline_schedule):
        result = run_gossip_baseline(baseline_graph, baseline_schedule)
        assert result.converged
        non_empty = {view for view in result.final_views.values() if view}
        assert non_empty == {frozenset({(2, 2), (2, 3)})}

    def test_information_spreads_to_whole_network(self, baseline_graph, baseline_schedule):
        result = run_gossip_baseline(baseline_graph, baseline_schedule)
        assert result.informed_nodes == len(baseline_graph) - 2

    def test_many_intermediate_view_installs(self, baseline_graph, baseline_schedule):
        result = run_gossip_baseline(baseline_graph, baseline_schedule)
        # Far more installs than the number of correct nodes would need if
        # they learned the final view directly.
        assert result.total_installs > result.informed_nodes

    def test_convergence_time_recorded(self, baseline_graph, baseline_schedule):
        result = run_gossip_baseline(baseline_graph, baseline_schedule)
        assert result.convergence_time is not None
        assert result.convergence_time > 1.0

    def test_no_crash_is_silent(self, baseline_graph):
        from repro.failures import CrashSchedule

        result = run_gossip_baseline(baseline_graph, CrashSchedule())
        assert result.total_installs == 0
        assert result.metrics.messages_sent == 0


class TestUncoordinatedBaseline:
    def test_every_border_node_acts(self, baseline_graph, baseline_schedule):
        result = run_uncoordinated_baseline(baseline_graph, baseline_schedule)
        border = baseline_graph.border({(2, 2), (2, 3)})
        assert set(result.actions) == set(border)

    def test_staggered_crash_produces_conflicts(self):
        graph = torus(8, 8)
        members = [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1)]
        schedule = region_crash(graph, members, at=1.0, spread=6.0)
        result = run_uncoordinated_baseline(graph, schedule, grace_period=1.5)
        assert result.conflicting_pairs > 0

    def test_simultaneous_crash_duplicates_work(self, baseline_graph, baseline_schedule):
        result = run_uncoordinated_baseline(baseline_graph, baseline_schedule)
        assert result.duplicated_repairs > 0

    def test_only_local_nodes_speak(self, baseline_graph, baseline_schedule):
        result = run_uncoordinated_baseline(baseline_graph, baseline_schedule)
        # The uncoordinated baseline is at least local: no protocol messages.
        assert communicating_nodes(result.trace) == frozenset()
