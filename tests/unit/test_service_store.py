"""Unit tests for the experiment service's durable state.

Covers the three pieces that never touch HTTP: the wire protocol
(:mod:`repro.service.protocol`), the digest-verified result store
(:mod:`repro.service.store`) and the journaled job ledger
(:mod:`repro.service.ledger`).  The live-server behaviour is exercised
by ``tests/integration/test_service.py``.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import ExperimentSpec, FailureSpec, SpecError, TopologySpec, run_spec
from repro.service import (
    JobLedger,
    JobRecord,
    ResultStore,
    ServiceError,
    StoreCorruption,
    job_key,
    result_envelope,
    spec_from_document,
    verify_envelope,
)
from repro.trace.digest import combine_digests


def small_spec(seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name="service-unit",
        topology=TopologySpec("grid", {"width": 4, "height": 4}),
        failure=FailureSpec("region", {"members": [[1, 1], [1, 2]], "at": 1.0}),
        seed=seed,
    )


@pytest.fixture(scope="module")
def executed():
    """One executed small run shared by every store test (spec, envelope)."""
    spec = small_spec()
    result = run_spec(spec)
    return spec, result_envelope(spec, result)


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_job_key_crosses_digest_with_seed(self):
        spec = small_spec(seed=7)
        assert job_key(spec) == f"{spec.digest()}x7"

    def test_spec_from_document_dispatches_on_tag(self):
        spec = small_spec()
        parsed = spec_from_document(spec.to_dict())
        assert parsed == spec

    def test_spec_from_document_rejects_bad_documents(self):
        with pytest.raises(SpecError):
            spec_from_document({"spec": "mystery"})
        with pytest.raises(SpecError):
            spec_from_document("not a mapping")

    def test_job_record_round_trip(self):
        record = JobRecord(
            id="job-000001", key="kx0", spec_digest="k", seed=0, kind="experiment"
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_job_record_rejects_unknown_keys(self):
        with pytest.raises(ServiceError):
            JobRecord.from_dict({"id": "job-1", "surprise": True})

    def test_envelope_carries_digest_and_payload(self, executed):
        spec, envelope = executed
        assert envelope["spec_digest"] == spec.digest()
        assert envelope["digest"] == envelope["result"]["digest"]
        verify_envelope(envelope)

    def test_verify_rejects_missing_digest(self):
        with pytest.raises(ServiceError):
            verify_envelope({"kind": "experiment", "result": {}})

    def test_verify_rejects_payload_digest_mismatch(self, executed):
        _, envelope = executed
        tampered = dict(envelope)
        tampered["digest"] = "0" * 64
        with pytest.raises(ServiceError):
            verify_envelope(tampered)

    def test_sweep_digest_must_recombine_from_runs(self):
        run_digests = ["1" * 64, "2" * 64]
        envelope = {
            "kind": "sweep",
            "digest": combine_digests(run_digests),
            "result": {"runs": [{"digest": digest} for digest in run_digests]},
        }
        verify_envelope(envelope)
        envelope["digest"] = "f" * 64
        with pytest.raises(ServiceError):
            verify_envelope(envelope)


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------
class TestResultStore:
    def test_round_trip(self, tmp_path, executed):
        spec, envelope = executed
        store = ResultStore(tmp_path)
        key = job_key(spec)
        store.put(key, spec.to_dict(), envelope)
        entry = store.get(key)
        assert entry is not None
        assert entry.digest == envelope["digest"]
        assert entry.spec == spec.to_dict()
        assert key in store
        assert list(store.keys()) == [key]
        assert len(store) == 1

    def test_absent_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("a" * 64 + "x0") is None

    def test_malformed_keys_are_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for key in ("", "../escape", ".hidden", "a/b"):
            with pytest.raises(ServiceError):
                store.get(key)

    def test_truncated_entry_is_corruption(self, tmp_path, executed):
        spec, envelope = executed
        store = ResultStore(tmp_path)
        key = job_key(spec)
        store.put(key, spec.to_dict(), envelope)
        path = tmp_path / f"{key}.json"
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(StoreCorruption):
            store.get(key)

    def test_tampered_payload_fails_checksum(self, tmp_path, executed):
        spec, envelope = executed
        store = ResultStore(tmp_path)
        key = job_key(spec)
        store.put(key, spec.to_dict(), envelope)
        path = tmp_path / f"{key}.json"
        data = json.loads(path.read_text())
        data["envelope"]["seed"] = 999
        path.write_text(json.dumps(data))
        with pytest.raises(StoreCorruption):
            store.get(key)
        assert store.evict(key)
        assert store.get(key) is None

    def test_put_refuses_unverifiable_envelope(self, tmp_path, executed):
        spec, envelope = executed
        bad = dict(envelope)
        bad["digest"] = "0" * 64
        with pytest.raises(ServiceError):
            ResultStore(tmp_path).put(job_key(spec), spec.to_dict(), bad)
        assert len(ResultStore(tmp_path)) == 0


class TestStoreByteBudget:
    def entry_size(self, tmp_path, executed):
        spec, envelope = executed
        probe = ResultStore(tmp_path / "probe")
        probe.put("probex0", spec.to_dict(), envelope)
        return probe.total_bytes()

    def test_unbounded_by_default(self, tmp_path, executed):
        spec, envelope = executed
        store = ResultStore(tmp_path)
        for index in range(5):
            store.put(f"k{index}x0", spec.to_dict(), envelope)
        assert len(store) == 5
        assert store.evictions == 0
        assert not store.journal_path.exists()

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ServiceError):
            ResultStore(tmp_path, max_bytes=0)

    def test_lru_eviction_on_overflow(self, tmp_path, executed):
        spec, envelope = executed
        size = self.entry_size(tmp_path, executed)
        store = ResultStore(tmp_path / "store", max_bytes=2 * size + size // 2)
        store.put("oldestx0", spec.to_dict(), envelope)
        time.sleep(0.002)  # distinct mtimes even on coarse filesystems
        store.put("middlex0", spec.to_dict(), envelope)
        assert store.evictions == 0
        time.sleep(0.002)
        store.put("newestx0", spec.to_dict(), envelope)
        assert store.evictions == 1
        assert "oldestx0" not in store
        assert "middlex0" in store and "newestx0" in store

    def test_read_refreshes_recency(self, tmp_path, executed):
        """A get() keeps an old-but-hot entry out of the eviction queue."""
        spec, envelope = executed
        size = self.entry_size(tmp_path, executed)
        store = ResultStore(tmp_path / "store", max_bytes=2 * size + size // 2)
        store.put("hotx0", spec.to_dict(), envelope)
        time.sleep(0.002)
        store.put("coldx0", spec.to_dict(), envelope)
        time.sleep(0.002)
        assert store.get("hotx0") is not None  # now the most recently used
        time.sleep(0.002)
        store.put("newx0", spec.to_dict(), envelope)
        assert "hotx0" in store
        assert "coldx0" not in store

    def test_just_written_entry_never_evicted(self, tmp_path, executed):
        spec, envelope = executed
        store = ResultStore(tmp_path, max_bytes=1)  # smaller than one entry
        store.put("onlyx0", spec.to_dict(), envelope)
        assert "onlyx0" in store

    def test_evictions_are_journaled(self, tmp_path, executed):
        spec, envelope = executed
        size = self.entry_size(tmp_path, executed)
        store = ResultStore(tmp_path / "store", max_bytes=size)
        store.put("firstx0", spec.to_dict(), envelope)
        store.put("secondx0", spec.to_dict(), envelope)
        records = [
            json.loads(line)
            for line in store.journal_path.read_text().splitlines()
        ]
        assert [record["key"] for record in records] == ["firstx0"]
        assert records[0]["op"] == "evict"
        assert records[0]["reason"] == "store-byte-budget"
        assert records[0]["bytes"] > 0

    def test_journal_not_counted_as_entry(self, tmp_path, executed):
        spec, envelope = executed
        size = self.entry_size(tmp_path, executed)
        store = ResultStore(tmp_path / "store", max_bytes=size)
        store.put("firstx0", spec.to_dict(), envelope)
        store.put("secondx0", spec.to_dict(), envelope)
        assert list(store.keys()) == ["secondx0"]
        assert store.get("firstx0") is None


# ---------------------------------------------------------------------------
# Job ledger
# ---------------------------------------------------------------------------
def submit_args(key: str = "k" * 64 + "x0", **overrides):
    args = dict(
        key=key,
        spec_digest="k" * 64,
        seed=0,
        kind="experiment",
        spec={"spec": "experiment"},
        total=1,
    )
    args.update(overrides)
    return args


class TestJobLedger:
    def test_submit_claim_complete_lifecycle(self, tmp_path):
        ledger = JobLedger(tmp_path)
        job, created = ledger.submit(**submit_args())
        assert created and job.state == "queued"
        claimed = ledger.claim("w1")
        assert claimed is not None
        running, spec = claimed
        assert running.id == job.id and running.state == "running"
        assert spec == {"spec": "experiment"}
        assert ledger.executions == 1
        done = ledger.complete(job.id, digest="d" * 64)
        assert done.terminal and done.digest == "d" * 64
        assert done.progress == {"done": 1, "total": 1}
        assert ledger.claim("w1") is None

    def test_duplicate_submission_is_absorbed(self, tmp_path):
        ledger = JobLedger(tmp_path)
        first, created = ledger.submit(**submit_args())
        second, created_again = ledger.submit(**submit_args())
        assert created and not created_again
        assert second.id == first.id
        # Still absorbed while running, no longer once terminal.
        ledger.claim("w1")
        third, absorbed = ledger.submit(**submit_args())
        assert not absorbed and third.id == first.id
        ledger.complete(first.id, digest="d" * 64)
        fourth, fresh = ledger.submit(**submit_args())
        assert fresh and fourth.id != first.id

    def test_force_bypasses_dedupe(self, tmp_path):
        ledger = JobLedger(tmp_path)
        first, _ = ledger.submit(**submit_args())
        forced, created = ledger.submit(**submit_args(force=True))
        assert created and forced.id != first.id

    def test_cached_submission_is_born_done(self, tmp_path):
        ledger = JobLedger(tmp_path)
        job, created = ledger.submit(**submit_args(cached_digest="c" * 64))
        assert created and job.state == "done" and job.cached
        assert job.digest == "c" * 64
        assert ledger.claim("w1") is None
        assert ledger.executions == 0

    def test_failure_records_error(self, tmp_path):
        ledger = JobLedger(tmp_path)
        job, _ = ledger.submit(**submit_args())
        ledger.claim("w1")
        failed = ledger.fail(job.id, "boom")
        assert failed.state == "failed" and failed.error == "boom"

    def test_journal_replay_restores_and_requeues(self, tmp_path):
        ledger = JobLedger(tmp_path)
        queued, _ = ledger.submit(**submit_args(key="a" * 64 + "x0"))
        running, _ = ledger.submit(
            **submit_args(key="b" * 64 + "x0", spec_digest="b" * 64)
        )
        done, _ = ledger.submit(
            **submit_args(key="c" * 64 + "x0", spec_digest="c" * 64)
        )
        # Drive `running` into flight and `done` to completion.  claim()
        # hands out jobs FIFO, so drain up to the one we want.
        assert ledger.claim("w1")[0].id == queued.id
        ledger.complete(queued.id, digest="d" * 64)
        assert ledger.claim("w1")[0].id == running.id
        assert ledger.claim("w1")[0].id == done.id
        ledger.complete(done.id, digest="e" * 64)

        reopened = JobLedger(tmp_path)
        assert reopened.get(queued.id).state == "done"
        assert reopened.get(done.id).digest == "e" * 64
        # The job that died mid-flight is queued again, spec intact.
        revived = reopened.get(running.id)
        assert revived.state == "queued"
        reclaimed = reopened.claim("w2")
        assert reclaimed is not None and reclaimed[0].id == running.id
        assert reclaimed[1] == {"spec": "experiment"}
        # Fresh submissions never reuse a replayed serial.
        newer, _ = reopened.submit(
            **submit_args(key="f" * 64 + "x0", spec_digest="f" * 64)
        )
        assert newer.id not in {queued.id, running.id, done.id}

    def test_torn_final_journal_line_is_tolerated(self, tmp_path):
        ledger = JobLedger(tmp_path)
        job, _ = ledger.submit(**submit_args())
        with ledger.journal_path.open("a") as handle:
            handle.write('{"op": "update", "id": "job-0')  # crash mid-append
        reopened = JobLedger(tmp_path)
        assert reopened.get(job.id).state == "queued"

    def test_concurrent_duplicate_submissions_create_one_job(self, tmp_path):
        ledger = JobLedger(tmp_path)
        outcomes = []
        barrier = threading.Barrier(8)

        def submitter():
            barrier.wait()
            outcomes.append(ledger.submit(**submit_args()))

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        created = [job for job, was_created in outcomes if was_created]
        assert len(created) == 1
        assert {job.id for job, _ in outcomes} == {created[0].id}
        assert ledger.counts()["queued"] == 1

    def test_wait_for_sees_mutations_and_iter_updates_terminates(self, tmp_path):
        ledger = JobLedger(tmp_path)
        job, _ = ledger.submit(**submit_args())
        seen = ledger.wait_for(job.id, since_version=-1, timeout=1.0)
        assert seen.id == job.id

        updates = []
        first_snapshot = threading.Event()

        def consume():
            for snapshot in ledger.iter_updates(job.id, timeout=5.0, poll=0.05):
                updates.append(snapshot.state)
                first_snapshot.set()

        consumer = threading.Thread(target=consume)
        consumer.start()
        assert first_snapshot.wait(timeout=5.0)
        ledger.claim("w1")
        ledger.report_progress(job.id, 1, 2)
        ledger.complete(job.id, digest="d" * 64)
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        # Bursts may collapse, but the stream always opens with the current
        # snapshot and closes with the terminal record.
        assert updates[0] == "queued"
        assert updates[-1] == "done"

    def test_unknown_job_errors(self, tmp_path):
        ledger = JobLedger(tmp_path)
        with pytest.raises(ServiceError):
            ledger.complete("job-999999", digest="d")
        with pytest.raises(ServiceError):
            ledger.jobs(state="sideways")
