"""Unit tests for the discrete-event simulator (network, FD, FIFO, crashes)."""

from __future__ import annotations

import pytest

from repro.graph import KnowledgeGraph
from repro.sim import (
    ConstantLatency,
    EventKind,
    IdleProcess,
    PerfectFailureDetector,
    Process,
    ScriptedFailureDetector,
    SimulationError,
    Simulator,
    UniformLatency,
)


class RecorderProcess(Process):
    """Records everything it sees; optionally replies / fans out messages."""

    def __init__(self, node_id, sends_on_start=(), reply=False):
        self.node_id = node_id
        self.sends_on_start = list(sends_on_start)
        self.reply = reply
        self.started = False
        self.received = []
        self.crashes_seen = []
        self.timers = []

    def on_start(self, ctx):
        self.started = True
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))
        for target, message in self.sends_on_start:
            ctx.send(target, message)

    def on_crash(self, ctx, crashed):
        self.crashes_seen.append((ctx.now(), crashed))

    def on_message(self, ctx, sender, message):
        self.received.append((ctx.now(), sender, message))
        if self.reply:
            ctx.send(sender, ("ack", message))

    def on_timer(self, ctx, tag):
        self.timers.append((ctx.now(), tag))


@pytest.fixture
def pair_graph():
    return KnowledgeGraph([("a", "b"), ("b", "c")])


def make_sim(graph, **kwargs):
    sim = Simulator(graph, **kwargs)
    sim.populate(RecorderProcess)
    return sim


class TestSetup:
    def test_add_process_unknown_node(self, pair_graph):
        sim = Simulator(pair_graph)
        with pytest.raises(SimulationError):
            sim.add_process("zzz", RecorderProcess("zzz"))

    def test_start_requires_all_processes(self, pair_graph):
        sim = Simulator(pair_graph)
        sim.add_process("a", RecorderProcess("a"))
        with pytest.raises(SimulationError):
            sim.start()

    def test_start_twice_rejected(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.start()
        with pytest.raises(SimulationError):
            sim.start()

    def test_add_process_after_start_rejected(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.start()
        with pytest.raises(SimulationError):
            sim.add_process("a", RecorderProcess("a"))

    def test_populate_respects_existing(self, pair_graph):
        sim = Simulator(pair_graph)
        special = RecorderProcess("a")
        sim.add_process("a", special)
        sim.populate(IdleProcess)
        assert sim.process("a") is special
        assert isinstance(sim.process("b"), IdleProcess)

    def test_process_lookup_unknown(self, pair_graph):
        sim = Simulator(pair_graph)
        with pytest.raises(SimulationError):
            sim.process("a")

    def test_start_triggers_on_start_for_all(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.start()
        assert all(sim.process(node).started for node in pair_graph.nodes)
        started_events = sim.trace.of_kind(EventKind.NODE_STARTED)
        assert len(started_events) == 3


class TestMessaging:
    def test_message_delivered_with_latency(self, pair_graph):
        sim = Simulator(pair_graph, latency=ConstantLatency(2.0))
        sim.add_process("a", RecorderProcess("a", sends_on_start=[("b", "hello")]))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.run()
        received = sim.process("b").received
        assert received == [(2.0, "a", "hello")]

    def test_reply_roundtrip(self, pair_graph):
        sim = Simulator(pair_graph, latency=ConstantLatency(1.0))
        sim.add_process("a", RecorderProcess("a", sends_on_start=[("b", "ping")]))
        sim.add_process("b", RecorderProcess("b", reply=True))
        sim.add_process("c", RecorderProcess("c"))
        sim.run()
        assert sim.process("a").received == [(2.0, "b", ("ack", "ping"))]

    def test_fifo_order_preserved_under_jitter(self):
        graph = KnowledgeGraph([("src", "dst")])
        sim = Simulator(graph, latency=UniformLatency(0.5, 3.0), seed=11)
        messages = [("dst", index) for index in range(20)]
        sim.add_process("src", RecorderProcess("src", sends_on_start=messages))
        sim.add_process("dst", RecorderProcess("dst"))
        sim.run()
        payloads = [message for _, _, message in sim.process("dst").received]
        assert payloads == list(range(20))

    def test_send_to_unknown_node_rejected(self, pair_graph):
        sim = Simulator(pair_graph)
        sim.add_process("a", RecorderProcess("a", sends_on_start=[("zzz", "x")]))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        with pytest.raises(SimulationError):
            sim.run()

    def test_message_to_crashed_node_dropped(self, pair_graph):
        sim = Simulator(pair_graph, latency=ConstantLatency(5.0))
        sim.add_process("a", RecorderProcess("a", sends_on_start=[("b", "x")]))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.schedule_crash("b", 1.0)
        sim.run()
        assert sim.process("b").received == []
        dropped = sim.trace.of_kind(EventKind.MESSAGE_DROPPED)
        assert len(dropped) == 1
        assert dropped[0].node == "b"

    def test_sent_and_delivered_recorded(self, pair_graph):
        sim = Simulator(pair_graph)
        sim.add_process("a", RecorderProcess("a", sends_on_start=[("b", "x")]))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.run()
        assert len(sim.trace.of_kind(EventKind.MESSAGE_SENT)) == 1
        assert len(sim.trace.of_kind(EventKind.MESSAGE_DELIVERED)) == 1


class TestCrashesAndFailureDetector:
    def test_crash_recorded_and_visible(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.schedule_crash("b", 3.0)
        sim.run()
        assert sim.is_crashed("b")
        assert sim.crash_time("b") == 3.0
        assert sim.crashed_nodes == frozenset({"b"})

    def test_crash_twice_is_noop(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.schedule_crash("b", 3.0)
        sim.schedule_crash("b", 4.0)
        sim.run()
        assert len(sim.trace.crashes()) == 1

    def test_crash_of_unknown_node_rejected(self, pair_graph):
        sim = make_sim(pair_graph)
        with pytest.raises(SimulationError):
            sim.schedule_crash("zzz", 1.0)

    def test_subscribers_notified_with_delay(self, pair_graph):
        sim = Simulator(pair_graph, failure_detector=PerfectFailureDetector(2.0))
        sim.populate(RecorderProcess)
        sim.schedule_crash("b", 1.0)
        sim.run()
        # a and c are neighbours of b and monitor it from on_start.
        assert sim.process("a").crashes_seen == [(3.0, "b")]
        assert sim.process("c").crashes_seen == [(3.0, "b")]

    def test_non_subscribers_not_notified(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.schedule_crash("c", 1.0)
        sim.run()
        # a is not a neighbour of c, so it never subscribed to c.
        assert sim.process("a").crashes_seen == []
        assert sim.process("b").crashes_seen == [(2.0, "c")]

    def test_subscription_after_crash_still_notified(self):
        """Strong completeness also covers late subscribers."""
        graph = KnowledgeGraph([("a", "b"), ("b", "c")])

        class LateSubscriber(RecorderProcess):
            def on_crash(self, ctx, crashed):
                super().on_crash(ctx, crashed)
                # After hearing about b, subscribe to c (which already crashed).
                if crashed == "b":
                    ctx.monitor_crash({"c"})

        sim = Simulator(graph, failure_detector=PerfectFailureDetector(1.0))
        sim.add_process("a", LateSubscriber("a"))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.schedule_crash("c", 0.5)
        sim.schedule_crash("b", 1.0)
        sim.run()
        seen = [crashed for _, crashed in sim.process("a").crashes_seen]
        assert seen == ["b", "c"]

    def test_notification_deduplicated(self, pair_graph):
        """Subscribing twice to the same node yields one notification."""

        class DoubleSubscriber(RecorderProcess):
            def on_start(self, ctx):
                super().on_start(ctx)
                ctx.monitor_crash({"b"})
                ctx.monitor_crash({"b"})

        sim = Simulator(pair_graph)
        sim.add_process("a", DoubleSubscriber("a"))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.schedule_crash("b", 1.0)
        sim.run()
        assert len(sim.process("a").crashes_seen) == 1

    def test_crashed_subscriber_not_notified(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.schedule_crash("a", 0.5)
        sim.schedule_crash("b", 1.0)
        sim.run()
        assert sim.process("a").crashes_seen == []

    def test_scripted_detector_orders_notifications(self):
        graph = KnowledgeGraph([("p", "x"), ("q", "x")])
        detector = ScriptedFailureDetector({("p", "x"): 10.0, ("q", "x"): 1.0})
        sim = Simulator(graph, failure_detector=detector)
        sim.populate(RecorderProcess)
        sim.schedule_crash("x", 1.0)
        sim.run()
        assert sim.process("q").crashes_seen == [(2.0, "x")]
        assert sim.process("p").crashes_seen == [(11.0, "x")]

    def test_monitor_unknown_node_rejected(self, pair_graph):
        class BadMonitor(RecorderProcess):
            def on_start(self, ctx):
                ctx.monitor_crash({"zzz"})

        sim = Simulator(pair_graph)
        sim.add_process("a", BadMonitor("a"))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        with pytest.raises(SimulationError):
            sim.run()


class TestTimersAndScheduling:
    def test_timer_fires(self, pair_graph):
        class TimerProcess(RecorderProcess):
            def on_start(self, ctx):
                super().on_start(ctx)
                ctx.set_timer(4.0, "wake")

        sim = Simulator(pair_graph)
        sim.add_process("a", TimerProcess("a"))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.run()
        assert sim.process("a").timers == [(4.0, "wake")]

    def test_timer_not_fired_for_crashed_node(self, pair_graph):
        class TimerProcess(RecorderProcess):
            def on_start(self, ctx):
                super().on_start(ctx)
                ctx.set_timer(4.0, "wake")

        sim = Simulator(pair_graph)
        sim.add_process("a", TimerProcess("a"))
        sim.add_process("b", RecorderProcess("b"))
        sim.add_process("c", RecorderProcess("c"))
        sim.schedule_crash("a", 1.0)
        sim.run()
        assert sim.process("a").timers == []

    def test_schedule_call(self, pair_graph):
        sim = make_sim(pair_graph)
        calls = []
        sim.schedule_call(2.0, lambda: calls.append(sim.now))
        sim.run()
        assert calls == [2.0]

    def test_run_until_bound(self, pair_graph):
        sim = make_sim(pair_graph)
        sim.schedule_crash("b", 10.0)
        sim.run(until=5.0)
        assert not sim.is_crashed("b")
        assert not sim.is_quiescent()
        sim.run()
        assert sim.is_crashed("b")
        assert sim.is_quiescent()

    def test_determinism_same_seed(self, small_grid):
        def build():
            sim = Simulator(small_grid, latency=UniformLatency(0.5, 2.0), seed=17)
            sim.populate(RecorderProcess)
            sim.schedule_crash((2, 2), 1.0)
            sim.run()
            return [
                (event.time, event.kind, repr(event.node), repr(event.peer))
                for event in sim.trace.events
            ]

        assert build() == build()
