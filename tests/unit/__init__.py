"""Unit tests: one module per library module."""
