"""Unit tests for the declarative spec layer (:mod:`repro.api.specs`)."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.api import (
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
    load_spec,
    spec_digest,
)
from repro.api.specs import freeze, thaw


def grid_spec(side: int = 6, seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name="unit-grid",
        topology=TopologySpec("grid", {"width": side, "height": side}),
        failure=FailureSpec(
            "region", {"members": [[2, 2], [2, 3], [3, 2], [3, 3]], "at": 1.0}
        ),
        seed=seed,
    )


class TestNormalisation:
    def test_freeze_is_idempotent(self):
        value = {"b": [1, [2, 3]], "a": {2, 1}}
        frozen = freeze(value)
        assert freeze(frozen) == frozen
        assert frozen["b"] == (1, (2, 3))

    def test_thaw_makes_json_serializable(self):
        value = {"x": ((1, 2), (3, 4)), "y": frozenset([5])}
        json.dumps(thaw(value))

    def test_lists_and_tuples_normalise_identically(self):
        via_lists = TopologySpec("grid", {"width": 6, "height": 6})
        spec_a = FailureSpec("region", {"members": [[1, 1], [1, 2]]})
        spec_b = FailureSpec("region", {"members": ((1, 1), (1, 2))})
        assert spec_a == spec_b
        assert spec_a.digest() == spec_b.digest()
        assert via_lists == TopologySpec("grid", {"height": 6, "width": 6})


class TestRoundTrip:
    def test_experiment_json_round_trip_equality(self):
        spec = grid_spec()
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.digest() == spec.digest()

    def test_experiment_json_round_trip_is_byte_identical(self):
        spec = grid_spec()
        once = spec.to_json()
        twice = ExperimentSpec.from_json(once).to_json()
        assert once == twice

    def test_sweep_round_trip(self):
        sweep = SweepSpec(
            experiment=grid_spec(),
            seeds=(0, 1, 2),
            grid={"topology.params.width": (6, 8)},
            workers=2,
        )
        restored = SweepSpec.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.digest() == sweep.digest()

    def test_family_sweep_round_trip(self):
        sweep = SweepSpec(family="property", seeds=tuple(range(5)), workers=2)
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_load_spec_dispatches_on_tag(self):
        assert isinstance(load_spec(grid_spec().to_json()), ExperimentSpec)
        sweep = SweepSpec(family="property", seeds=(0,))
        assert isinstance(load_spec(sweep.to_json()), SweepSpec)

    def test_load_spec_rejects_untagged_documents(self):
        with pytest.raises(SpecError):
            load_spec(json.dumps({"hello": "world"}))
        with pytest.raises(SpecError):
            load_spec("not json at all")

    def test_membership_and_runtime_round_trip(self):
        spec = ExperimentSpec(
            topology=TopologySpec("torus", {"width": 6, "height": 6}),
            failure=FailureSpec("region", {"members": [[1, 1], [1, 2]], "at": 1.0}),
            membership=MembershipSpec("flash_crowd", {"count": 3, "at": 2.0}),
            runtime=RuntimeSpec(
                engine="sim",
                batched=False,
                latency={"kind": "constant", "delay": 2.0},
                failure_detector={"kind": "jittered", "low": 0.3, "high": 1.5},
            ),
            seed=7,
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec


class TestValidation:
    def test_unknown_failure_kind_rejected(self):
        with pytest.raises(SpecError):
            FailureSpec("meteor-strike")

    def test_unknown_membership_kind_rejected(self):
        with pytest.raises(SpecError):
            MembershipSpec("teleport")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SpecError):
            RuntimeSpec(engine="quantum")

    def test_unknown_topology_kind_fails_at_build(self):
        with pytest.raises(SpecError):
            TopologySpec("klein-bottle").build_uncached()

    def test_bad_topology_params_fail_at_build(self):
        with pytest.raises(SpecError):
            TopologySpec("grid", {"sides": 6}).build_uncached()

    def test_sweep_needs_exactly_one_mode(self):
        with pytest.raises(SpecError):
            SweepSpec()
        with pytest.raises(SpecError):
            SweepSpec(experiment=grid_spec(), family="property")

    def test_family_sweep_rejects_grid(self):
        with pytest.raises(SpecError):
            SweepSpec(family="property", seeds=(0,), grid={"seed": (1, 2)})

    def test_version_mismatch_rejected(self):
        data = grid_spec().to_dict()
        data["version"] = 99
        with pytest.raises(SpecError):
            ExperimentSpec.from_dict(data)

    def test_runtime_spec_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="max_event"):
            RuntimeSpec.from_dict({"max_event": 1000})

    def test_topology_kinds_match_the_builder_table(self):
        from repro.api import TOPOLOGY_KINDS
        from repro.api.specs import _TOPOLOGY_BUILDERS

        assert TOPOLOGY_KINDS == tuple(sorted(_TOPOLOGY_BUILDERS))


class TestFaultsValidation:
    """The ``RuntimeSpec.faults`` block fails at construction, not at run."""

    @pytest.mark.parametrize(
        "faults,match",
        [
            ({"loss": -0.1}, "bad faults spec"),
            ({"loss": 1.0}, "bad faults spec"),  # drop-everything channel
            ({"duplication": 2.0}, "bad faults spec"),
            ({"duplication": 0.5, "copies": 1}, "bad faults spec"),
            ({"reorder": 0.0}, "bad faults spec"),
            ({"reorder": -2.0}, "bad faults spec"),
            ({"reorder": 1.0, "reorder_rate": 1.5}, "bad faults spec"),
            ({"loss": 0.1, "seed": "x"}, "seed"),
            ({"loss": 0.1, "seed": True}, "seed"),
            ({"copies": 3}, "base knob"),
            ({"reorder_rate": 0.5}, "base knob"),
            ({"copies": 3, "reorder_rate": 0.5}, "base knob"),
            ({"seed": 1}, "enables no fault"),
            ({}, "enables no fault"),
            ({"lss": 0.1}, "unknown"),
            ("loss=0.1", "mapping"),
        ],
    )
    def test_bad_blocks_rejected_at_construction(self, faults, match):
        with pytest.raises(SpecError, match=match):
            RuntimeSpec(faults=faults)

    def test_valid_block_resolves_to_composition(self):
        from repro.sim.faults import ComposedFaults, LossyLinks

        spec = RuntimeSpec(
            faults={"loss": 0.1, "duplication": 0.2, "reorder": 1.5, "seed": 7}
        )
        model = spec.resolve_faults()
        assert isinstance(model, ComposedFaults)
        assert [type(stage).__name__ for stage in model.stages] == [
            "LossyLinks",
            "DuplicatingLinks",
            "ReorderingLinks",
        ]
        assert all(stage.seed == 7 for stage in model.stages)
        single = RuntimeSpec(faults={"loss": 0.1}).resolve_faults()
        assert isinstance(single, LossyLinks)
        assert RuntimeSpec().resolve_faults() is None

    def test_faults_serialized_only_when_set(self):
        assert "faults" not in RuntimeSpec().to_dict()
        data = RuntimeSpec(faults={"loss": 0.1}).to_dict()
        assert data["faults"] == {"loss": 0.1}
        assert RuntimeSpec.from_dict(data).faults == {"loss": 0.1}

    def test_fault_free_digest_unchanged_by_field_existence(self):
        """The ``faults`` field must not leak into fault-free documents:
        their bytes (hence digests) predate the fault layer."""
        spec = grid_spec()
        assert "faults" not in spec.to_dict()["runtime"]
        faulted = spec.with_faults({"loss": 0.1})
        assert faulted.digest() != spec.digest()
        assert faulted.with_faults(None).digest() == spec.digest()

    def test_with_faults_round_trip(self):
        spec = grid_spec().with_faults({"duplication": 0.2, "copies": 3})
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.runtime.faults == {"duplication": 0.2, "copies": 3}


class TestLatencyValidation:
    """Latency blocks are validated eagerly too (same rationale)."""

    @pytest.mark.parametrize(
        "latency,match",
        [
            ({"kind": "warp"}, "unknown latency kind"),
            ({"kind": "constant", "delay": -1.0}, "bad latency spec"),
            ({"kind": "constant", "dealy": 1.0}, "bad latency spec"),
            ({"kind": "uniform", "low": 2.0, "high": 1.0}, "bad latency spec"),
            ({"kind": "exponential", "mean": 0.0}, "bad latency spec"),
            (3.5, "mapping"),
        ],
    )
    def test_bad_blocks_rejected_at_construction(self, latency, match):
        with pytest.raises(SpecError, match=match):
            RuntimeSpec(latency=latency)

    def test_valid_latency_still_resolves(self):
        from repro.sim import UniformLatency

        spec = RuntimeSpec(latency={"kind": "uniform", "low": 0.5, "high": 1.5})
        model = spec.resolve_latency()
        assert isinstance(model, UniformLatency)
        assert (model.low, model.high) == (0.5, 1.5)


class TestDigest:
    def test_digest_is_stable_across_param_order(self):
        a = spec_digest({"x": 1, "y": (2, 3)})
        b = spec_digest({"y": [2, 3], "x": 1})
        assert a == b

    def test_digest_differs_on_content(self):
        assert grid_spec(seed=0).digest() != grid_spec(seed=1).digest()

    def test_digest_is_hash_seed_independent(self):
        """The digest must not depend on PYTHONHASHSEED — it keys the
        topology cache shared across independently started workers."""
        code = (
            "from repro.api import ExperimentSpec, TopologySpec, FailureSpec\n"
            "spec = ExperimentSpec(\n"
            "    name='unit-grid',\n"
            "    topology=TopologySpec('grid', {'width': 6, 'height': 6}),\n"
            "    failure=FailureSpec('region',"
            " {'members': [[2, 2], [2, 3], [3, 2], [3, 3]], 'at': 1.0}),\n"
            ")\n"
            "print(spec.digest())\n"
        )
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        digests = set()
        for hash_seed in ("1", "12345"):
            completed = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    "PYTHONHASHSEED": hash_seed,
                    "PYTHONPATH": src,
                    "PATH": "/usr/bin:/bin",
                },
                check=True,
            )
            digests.add(completed.stdout.strip())
        assert len(digests) == 1
        assert digests == {grid_spec().digest()}


class TestGridExpansion:
    def test_expand_crosses_grid_and_seeds(self):
        sweep = SweepSpec(
            experiment=grid_spec(),
            seeds=(0, 1),
            grid={"topology.params.width": (6, 8)},
        )
        points = sweep.expand()
        assert len(points) == len(sweep) == 4
        widths = [point.topology.params["width"] for point in points]
        seeds = [point.seed for point in points]
        assert widths == [6, 6, 8, 8]
        assert seeds == [0, 1, 0, 1]

    def test_expand_without_seeds_uses_template_seed(self):
        sweep = SweepSpec(experiment=grid_spec(seed=9))
        points = sweep.expand()
        assert [point.seed for point in points] == [9]

    def test_grid_axes_expand_in_sorted_path_order(self):
        sweep = SweepSpec(
            experiment=grid_spec(),
            grid={
                "topology.params.width": (6, 8),
                "check": (True, False),
            },
        )
        points = sweep.expand()
        assert len(points) == 4
        # "check" sorts before "topology.params.width": it is outermost.
        assert [point.check for point in points] == [True, True, False, False]

    def test_seed_grid_axis_is_honoured(self):
        sweep = SweepSpec(experiment=grid_spec(seed=7), grid={"seed": (1, 2, 3)})
        points = sweep.expand()
        assert [point.seed for point in points] == [1, 2, 3]

    def test_seed_grid_axis_conflicts_with_seeds_list(self):
        with pytest.raises(SpecError, match="ambiguous"):
            SweepSpec(experiment=grid_spec(), seeds=(0,), grid={"seed": (1, 2)})

    def test_grid_axes_must_be_value_lists(self):
        with pytest.raises(SpecError, match="non-empty list"):
            SweepSpec(experiment=grid_spec(), grid={"topology.params.width": 8})
        with pytest.raises(SpecError, match="non-empty list"):
            SweepSpec(experiment=grid_spec(), grid={"topology.kind": "torus"})
        with pytest.raises(SpecError, match="non-empty list"):
            SweepSpec(experiment=grid_spec(), grid={"seed": ()})

    def test_unknown_top_level_keys_rejected(self):
        data = grid_spec().to_dict()
        data["aribtration"] = False
        with pytest.raises(SpecError, match="aribtration"):
            ExperimentSpec.from_dict(data)
        with pytest.raises(SpecError, match="member"):
            FailureSpec.from_dict({"kind": "region", "member": []})
        sweep_data = SweepSpec(family="property", seeds=(0,)).to_dict()
        sweep_data["worker"] = 4
        with pytest.raises(SpecError, match="worker"):
            SweepSpec.from_dict(sweep_data)

    def test_family_mode_does_not_expand(self):
        sweep = SweepSpec(family="property", seeds=(0, 1))
        with pytest.raises(SpecError):
            sweep.expand()

    def test_specs_are_hashable(self):
        sweep = SweepSpec(
            experiment=grid_spec(),
            seeds=(0, 1),
            grid={"topology.params.width": (6, 8)},
        )
        points = sweep.expand()
        assert len(set(points)) == len(points)
        assert hash(grid_spec()) == hash(grid_spec())
        assert {sweep: "ok"}[SweepSpec.from_json(sweep.to_json())] == "ok"

    def test_tasks_are_picklable_by_spec(self):
        import pickle

        sweep = SweepSpec(experiment=grid_spec(), seeds=(0, 1))
        tasks = sweep.tasks()
        assert all(task.family == "spec" for task in tasks)
        assert all(task.seed is not None for task in tasks)
        restored = pickle.loads(pickle.dumps(tasks))
        assert [t.params for t in restored] == [t.params for t in tasks]


class TestFamilyGridExpansion:
    def family_sweep(self, **overrides):
        params = dict(
            family="churn-scenario",
            family_params={"scenario": "steady"},
            seeds=(0, 1),
            grid={"nodes": (16, 36)},
        )
        params.update(overrides)
        return SweepSpec(**params)

    def test_grid_crosses_family_params_and_seeds(self):
        sweep = self.family_sweep()
        tasks = sweep.tasks()
        assert len(tasks) == len(sweep) == 4
        assert [task.params["nodes"] for task in tasks] == [16, 16, 36, 36]
        assert [task.seed for task in tasks] == [0, 1, 0, 1]
        assert all(task.params["scenario"] == "steady" for task in tasks)

    def test_labels_carry_the_grid_point(self):
        labels = [task.display_label() for task in self.family_sweep().tasks()]
        assert labels == [
            "churn-scenario[nodes=16]",
            "churn-scenario[nodes=16]",
            "churn-scenario[nodes=36]",
            "churn-scenario[nodes=36]",
        ]

    def test_no_grid_keeps_bare_family_label(self):
        tasks = self.family_sweep(grid={}).tasks()
        assert [task.display_label() for task in tasks] == ["churn-scenario"] * 2

    def test_dotted_paths_reach_nested_params(self):
        sweep = self.family_sweep(
            family_params={"scenario": "steady", "tuning": {"rate": 0.1}},
            grid={"tuning.rate": (0.1, 0.2)},
            seeds=(5,),
        )
        points = sweep.expand_family_params()
        assert [params["tuning"]["rate"] for params, _ in points] == [0.1, 0.2]
        assert [label for _, label in points] == ["rate=0.1", "rate=0.2"]

    def test_coupled_axes_move_in_lockstep(self):
        sweep = self.family_sweep(
            family_params={},
            grid={"width|height": (4, 6)},
            seeds=(0,),
        )
        points = [params for params, _ in sweep.expand_family_params()]
        assert points == [
            {"width": 4, "height": 4},
            {"width": 6, "height": 6},
        ]

    def test_seed_axis_rejected_in_family_mode(self):
        with pytest.raises(SpecError, match="seeds"):
            self.family_sweep(grid={"seed": (1, 2)}, seeds=())

    def test_round_trips_through_json(self):
        sweep = self.family_sweep()
        restored = SweepSpec.from_json(sweep.to_json())
        assert restored == sweep
        assert restored.digest() == sweep.digest()
        assert [t.params for t in restored.tasks()] == [
            t.params for t in sweep.tasks()
        ]

    def test_experiment_mode_rejects_family_expansion(self):
        sweep = SweepSpec(experiment=grid_spec(), seeds=(0,))
        with pytest.raises(SpecError, match="experiment-mode"):
            sweep.expand_family_params()
