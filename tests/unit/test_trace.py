"""Unit tests for trace recording and metrics extraction."""

from __future__ import annotations

from repro.graph import Region
from repro.sim import EventKind, TraceEvent, payload_size
from repro.trace import (
    TraceRecorder,
    collect_metrics,
    communicating_nodes,
    message_pairs,
)


def make_trace() -> TraceRecorder:
    """A small hand-written trace with two decisions and three messages."""
    trace = TraceRecorder()
    view = Region(frozenset({"x"}))
    trace.emit(0.0, EventKind.NODE_STARTED, node="a")
    trace.emit(1.0, EventKind.NODE_CRASHED, node="x")
    trace.emit(2.0, EventKind.CRASH_NOTIFIED, node="a", peer="x")
    trace.emit(2.0, EventKind.VIEW_PROPOSED, node="a", payload=view)
    trace.emit(2.5, EventKind.MESSAGE_SENT, node="a", peer="b", payload="m1")
    trace.emit(3.0, EventKind.MESSAGE_DELIVERED, node="b", peer="a", payload="m1")
    trace.emit(3.5, EventKind.MESSAGE_SENT, node="b", peer="a", payload="m2")
    trace.emit(4.0, EventKind.MESSAGE_DELIVERED, node="a", peer="b", payload="m2")
    trace.emit(4.5, EventKind.MESSAGE_SENT, node="a", peer="x", payload="m3")
    trace.emit(5.0, EventKind.MESSAGE_DROPPED, node="x", peer="a", payload="m3")
    trace.emit(6.0, EventKind.VIEW_REJECTED, node="b", payload=view)
    trace.emit(7.0, EventKind.DECIDED, node="a", payload=view, decision="plan")
    trace.emit(7.5, EventKind.DECIDED, node="b", payload=view, decision="plan")
    return trace


class TestTraceRecorder:
    def test_events_in_order(self):
        trace = make_trace()
        times = [event.time for event in trace]
        assert times == sorted(times)
        assert len(trace) == 13

    def test_of_kind(self):
        trace = make_trace()
        assert len(trace.of_kind(EventKind.MESSAGE_SENT)) == 3
        assert len(trace.of_kind(EventKind.MESSAGE_SENT, EventKind.MESSAGE_DELIVERED)) == 5

    def test_at_node(self):
        trace = make_trace()
        assert all(event.node == "a" for event in trace.at_node("a"))
        assert len(trace.at_node("a")) == 7

    def test_decisions_and_crashes(self):
        trace = make_trace()
        assert len(trace.decisions()) == 2
        assert trace.crashed_nodes() == frozenset({"x"})

    def test_first_and_last(self):
        trace = make_trace()
        assert trace.first(EventKind.DECIDED).node == "a"
        assert trace.last(EventKind.DECIDED).node == "b"
        assert trace.first(EventKind.CUSTOM) is None
        assert trace.last(EventKind.CUSTOM) is None

    def test_end_time(self):
        assert make_trace().end_time() == 7.5
        assert TraceRecorder().end_time() == 0.0

    def test_filter(self):
        trace = make_trace()
        late = trace.filter(lambda event: event.time > 6.5)
        assert len(late) == 2

    def test_listener_called(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(lambda event: seen.append(event.kind))
        trace.emit(1.0, EventKind.NODE_CRASHED, node="x")
        assert seen == [EventKind.NODE_CRASHED]

    def test_extend(self):
        trace = TraceRecorder()
        trace.extend(make_trace().events)
        assert len(trace) == 13

    def test_to_lines_and_describe(self):
        trace = make_trace()
        lines = trace.to_lines()
        assert len(lines) == len(trace)
        assert "node_crashed" in lines[1]
        assert "t=1.000" in lines[1]


class TestPayloadSize:
    def test_none_payload(self):
        assert payload_size(None) == 0

    def test_plain_payload_uses_repr(self):
        assert payload_size("abc") == len(repr("abc"))

    def test_wire_size_hook(self):
        class Sized:
            def wire_size(self):
                return 123

        assert payload_size(Sized()) == 123


class TestMetrics:
    def test_collect_metrics_counts(self):
        metrics = collect_metrics(make_trace())
        assert metrics.messages_sent == 3
        assert metrics.messages_delivered == 2
        assert metrics.decisions == 2
        assert metrics.deciding_nodes == 2
        assert metrics.decided_views == 1
        assert metrics.proposals == 1
        assert metrics.rejections == 1
        assert metrics.failed_instances == 0
        assert metrics.notified_nodes == 1
        assert metrics.speaking_nodes == 2

    def test_decision_times(self):
        metrics = collect_metrics(make_trace())
        assert metrics.first_decision_time == 7.0
        assert metrics.last_decision_time == 7.5
        assert metrics.end_time == 7.5

    def test_no_decisions(self):
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.MESSAGE_SENT, node="a", peer="b", payload="m")
        metrics = collect_metrics(trace)
        assert metrics.decisions == 0
        assert metrics.first_decision_time is None
        assert metrics.max_messages_per_node == 1

    def test_per_node_messages(self):
        metrics = collect_metrics(make_trace())
        assert metrics.per_node_messages == {"a": 2, "b": 1}
        assert metrics.max_messages_per_node == 2

    def test_bytes_sent_positive(self):
        assert collect_metrics(make_trace()).bytes_sent > 0

    def test_as_row_keys(self):
        row = collect_metrics(make_trace()).as_row()
        assert row["messages_sent"] == 3
        assert row["decisions"] == 2
        assert "bytes_sent" in row

    def test_communicating_nodes(self):
        nodes = communicating_nodes(make_trace())
        assert nodes == frozenset({"a", "b", "x"})

    def test_message_pairs(self):
        pairs = message_pairs(make_trace())
        assert pairs == frozenset({("a", "b"), ("b", "a"), ("a", "x")})
