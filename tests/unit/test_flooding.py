"""Unit tests for the flooding uniform consensus building block."""

from __future__ import annotations

import pytest

from repro.core import FloodMessage, FloodingConsensusNode, merge_sets, pick_minimum
from repro.graph import KnowledgeGraph
from repro.sim import ConstantLatency, EventKind, PerfectFailureDetector, Simulator


@pytest.fixture
def clique_graph():
    return KnowledgeGraph(
        [("a", "b"), ("a", "c"), ("a", "d"), ("b", "c"), ("b", "d"), ("c", "d")]
    )


def run_flooding(graph, initial_values, crashes=(), pick=pick_minimum, early=True):
    participants = frozenset(initial_values)
    sim = Simulator(
        graph,
        latency=ConstantLatency(1.0),
        failure_detector=PerfectFailureDetector(0.5),
    )
    for node in graph.nodes:
        if node in participants:
            sim.add_process(
                node,
                FloodingConsensusNode(
                    node,
                    participants,
                    initial_values[node],
                    pick=pick,
                    early_termination=early,
                ),
            )
    sim.populate(lambda node_id: FloodingConsensusNode(node_id, frozenset({node_id}), None))
    for node, time in crashes:
        sim.schedule_crash(node, time)
    sim.run()
    return sim


class TestDecisionFunctions:
    def test_pick_minimum(self):
        assert pick_minimum({"a": 3, "b": 1, "c": 2}) == 1

    def test_pick_minimum_empty(self):
        with pytest.raises(ValueError):
            pick_minimum({})

    def test_merge_sets(self):
        merged = merge_sets({"a": {1, 2}, "b": {2, 3}})
        assert merged == frozenset({1, 2, 3})

    def test_merge_sets_empty(self):
        assert merge_sets({}) == frozenset()


class TestConstruction:
    def test_node_must_be_participant(self):
        with pytest.raises(ValueError):
            FloodingConsensusNode("a", frozenset({"b"}), 1)

    def test_message_round_positive(self):
        with pytest.raises(ValueError):
            FloodMessage(0, {})

    def test_message_wire_size(self):
        assert FloodMessage(1, {"a": 1}).wire_size() > 16

    def test_total_rounds(self):
        node = FloodingConsensusNode("a", frozenset({"a", "b", "c"}), 1)
        assert node.total_rounds == 2
        single = FloodingConsensusNode("a", frozenset({"a"}), 1)
        assert single.total_rounds == 1


class TestAgreement:
    def test_all_decide_same_value(self, clique_graph):
        values = {"a": 4, "b": 2, "c": 9, "d": 7}
        sim = run_flooding(clique_graph, values)
        decisions = {
            node: sim.process(node).decided for node in values
        }
        assert set(decisions.values()) == {2}

    def test_decided_events_recorded(self, clique_graph):
        values = {"a": 1, "b": 2, "c": 3, "d": 4}
        sim = run_flooding(clique_graph, values)
        assert len(sim.trace.of_kind(EventKind.DECIDED)) == 4

    def test_agreement_with_crashed_participant(self, clique_graph):
        values = {"a": 4, "b": 2, "c": 9, "d": 7}
        sim = run_flooding(clique_graph, values, crashes=[("b", 0.2)])
        survivors = {"a", "c", "d"}
        decisions = {sim.process(node).decided for node in survivors}
        assert len(decisions) == 1
        assert decisions.pop() in {2, 4, 7, 9}

    def test_agreement_with_mid_run_crash(self, clique_graph):
        values = {"a": 4, "b": 2, "c": 9, "d": 7}
        sim = run_flooding(clique_graph, values, crashes=[("b", 2.5)], early=False)
        survivors = {"a", "c", "d"}
        decisions = {sim.process(node).decided for node in survivors}
        assert len(decisions) == 1

    def test_merge_sets_consensus(self, clique_graph):
        values = {
            "a": frozenset({"x"}),
            "b": frozenset({"y"}),
            "c": frozenset(),
            "d": frozenset({"x", "z"}),
        }
        sim = run_flooding(clique_graph, values, pick=merge_sets)
        for node in values:
            assert sim.process(node).decided == frozenset({"x", "y", "z"})

    def test_without_early_termination_runs_full_rounds(self, clique_graph):
        values = {"a": 1, "b": 2, "c": 3, "d": 4}
        fast = run_flooding(clique_graph, values, early=True)
        slow = run_flooding(clique_graph, values, early=False)
        assert (
            len(slow.trace.of_kind(EventKind.MESSAGE_SENT))
            >= len(fast.trace.of_kind(EventKind.MESSAGE_SENT))
        )
        for node in values:
            assert slow.process(node).decided == fast.process(node).decided

    def test_single_participant_decides_immediately(self):
        graph = KnowledgeGraph([("a", "b")])
        sim = Simulator(graph)
        sim.add_process("a", FloodingConsensusNode("a", frozenset({"a"}), 42))
        sim.populate(lambda node_id: FloodingConsensusNode(node_id, frozenset({node_id}), 0))
        sim.run()
        assert sim.process("a").decided == 42

    def test_begin_is_idempotent(self, clique_graph):
        node = FloodingConsensusNode("a", frozenset({"a", "b"}), 1, auto_start=False)

        class _Ctx:
            graph = clique_graph
            node_id = "a"

            def __init__(self):
                self.sent = []

            def now(self):
                return 0.0

            def multicast(self, targets, message):
                self.sent.append((tuple(targets), message))

            def monitor_crash(self, targets):
                pass

            def record(self, kind, payload=None, peer=None, **detail):
                pass

        ctx = _Ctx()
        node.on_start(ctx)
        assert node.started is False
        node.begin(ctx)
        node.begin(ctx)
        round_one = [msg for _, msg in ctx.sent if msg.round == 1]
        assert len(round_one) == 1
