"""Unit tests for :mod:`repro.api.session`, the topology cache, and the
unified Result protocol."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentSession,
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    Result,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
    build_topology,
    churn_scenario_spec,
    clear_topology_cache,
    figure_spec,
    quickstart_spec,
    run_spec,
    topology_cache_info,
)
from repro.churn.runner import ChurnRunResult
from repro.experiments import (
    churn_flash_crowd_scenario,
    churn_recovery_race_scenario,
    churn_steady_scenario,
    fig1a_scenario,
)
from repro.experiments.runner import RunResult, run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import grid, square_region


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


class TestTopologyCache:
    def test_cache_hit_returns_same_instance(self):
        spec = TopologySpec("grid", {"width": 5, "height": 5})
        first = build_topology(spec)
        second = build_topology(spec)
        assert first is second
        info = topology_cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_equivalent_specs_share_one_build(self):
        a = TopologySpec("grid", {"width": 5, "height": 5})
        b = TopologySpec("grid", {"height": 5, "width": 5})
        assert build_topology(a) is build_topology(b)

    def test_different_specs_build_different_graphs(self):
        small = build_topology(TopologySpec("grid", {"width": 4, "height": 4}))
        large = build_topology(TopologySpec("grid", {"width": 5, "height": 5}))
        assert len(small) != len(large)
        assert topology_cache_info().misses == 2

    def test_cache_eviction_respects_maxsize(self):
        from repro.api import set_topology_cache_size

        try:
            set_topology_cache_size(2)
            for side in (4, 5, 6):
                build_topology(TopologySpec("grid", {"width": side, "height": side}))
            assert topology_cache_info().size == 2
            # The oldest entry (side=4) was evicted; rebuilding is a miss.
            build_topology(TopologySpec("grid", {"width": 4, "height": 4}))
            assert topology_cache_info().misses == 4
        finally:
            set_topology_cache_size(32)

    def test_cached_graph_equals_direct_build(self):
        spec = TopologySpec("torus", {"width": 5, "height": 5})
        cached = build_topology(spec)
        direct = spec.build_uncached()
        assert cached.nodes == direct.nodes
        assert cached.edge_count == direct.edge_count


class TestSessionEquivalence:
    """Spec-driven runs must be digest-identical to the classic APIs."""

    def test_quickstart_spec_matches_run_cliff_edge(self):
        spec = quickstart_spec(side=6, block=2, seed=0)
        via_spec = ExperimentSession().run(spec)
        graph = grid(6, 6)
        block = sorted(square_region((1, 1), 2))
        direct = run_cliff_edge(graph, region_crash(graph, block, at=1.0), seed=0, check=True)
        assert via_spec.digest() == direct.digest()
        assert via_spec.specification.holds

    def test_figure_1a_spec_matches_scenario(self):
        via_spec = ExperimentSession().run(figure_spec("1a"))
        direct = fig1a_scenario().run(seed=0)
        assert via_spec.digest() == direct.digest()

    @pytest.mark.parametrize(
        "name, builder",
        [
            ("steady", churn_steady_scenario),
            ("race", churn_recovery_race_scenario),
            ("flash", churn_flash_crowd_scenario),
        ],
    )
    def test_churn_scenario_specs_match_builders(self, name, builder):
        spec = churn_scenario_spec(name, nodes=36, seed=2)
        via_spec = ExperimentSession().run(spec)
        direct = builder(nodes=36, seed=2).run(check=True, seed=2, runtime="sim")
        assert via_spec.digest() == direct.digest()
        assert isinstance(via_spec, ChurnRunResult)

    def test_session_routes_static_specs_to_run_result(self):
        result = ExperimentSession().run(quickstart_spec())
        assert isinstance(result, RunResult)

    def test_unbatched_runtime_spec_is_trace_equal(self):
        spec = quickstart_spec(side=5, block=2)
        batched = ExperimentSession().run(spec)
        unbatched = ExperimentSession().run(
            ExperimentSpec.from_dict(
                dict(spec.to_dict(), runtime=dict(spec.runtime.to_dict(), batched=False))
            )
        )
        assert batched.digest() == unbatched.digest()

    def test_churn_spec_rejects_ablation_knobs(self):
        spec = churn_scenario_spec("race", nodes=36)
        bad = ExperimentSpec.from_dict(dict(spec.to_dict(), early_termination=True))
        with pytest.raises(SpecError):
            ExperimentSession().run(bad)

    def test_asyncio_spec_rejects_sim_only_knobs(self):
        base = churn_scenario_spec("flash", nodes=16, runtime="asyncio")
        for override in (
            {"early_termination": True},
            {"arbitration": False},
            {"runtime": dict(base.runtime.to_dict(), batched=False)},
            {"runtime": dict(base.runtime.to_dict(), latency={"kind": "constant"})},
            {"runtime": dict(base.runtime.to_dict(), until=50.0)},
            {"runtime": dict(base.runtime.to_dict(), max_events=10)},
        ):
            bad = ExperimentSpec.from_dict(dict(base.to_dict(), **override))
            with pytest.raises(SpecError, match="asyncio"):
                ExperimentSession().run(bad)

    def test_coupled_kinds_resolve_once_and_stay_consistent(self):
        spec = churn_scenario_spec("steady", nodes=16, seed=4)
        graph, schedule, membership = ExperimentSession().resolve(spec)
        # Both halves come from one builder call and must validate together.
        membership.validate(graph, crashes=schedule)
        assert len(schedule) > 0 and len(membership) > 0

    def test_coupled_kinds_reject_divergent_params(self):
        # A grid override touching only one half would silently build an
        # inconsistent scenario; the session must refuse it.
        sweep = SweepSpec(
            experiment=churn_scenario_spec("race", nodes=16),
            grid={"failure.params.recover_at": (4.0, 8.0)},
        )
        for point in sweep.expand():
            with pytest.raises(SpecError, match="identical"):
                ExperimentSession().resolve(point)

    def test_coupled_kinds_reject_a_lone_half(self):
        spec = churn_scenario_spec("race", nodes=16)
        lone = ExperimentSpec.from_dict(
            dict(spec.to_dict(), membership={"kind": "none", "params": {}})
        )
        with pytest.raises(SpecError, match="pair"):
            ExperimentSession().resolve(lone)

    def test_spec_labels_and_digest_reach_the_result(self):
        result = ExperimentSession().run(quickstart_spec(side=5))
        assert result.labels["scenario"] == "quickstart"
        assert result.labels["spec_digest"] == quickstart_spec(side=5).digest()


class TestResultProtocol:
    def test_all_three_layers_implement_result(self):
        run_result = ExperimentSession().run(quickstart_spec(side=5))
        churn_result = ExperimentSession().run(churn_scenario_spec("flash", nodes=16))
        report = ExperimentSession().run_sweep(
            SweepSpec(experiment=quickstart_spec(side=5), seeds=(0,))
        )
        for outcome in (run_result, churn_result, report):
            assert isinstance(outcome, Result)
            assert isinstance(outcome.digest(), str) and outcome.digest()
            json.dumps(outcome.as_dict())

    def test_shared_mixin_backs_both_run_results(self):
        from repro.api import DecisionResultMixin

        assert issubclass(RunResult, DecisionResultMixin)
        assert issubclass(ChurnRunResult, DecisionResultMixin)
        run_result = ExperimentSession().run(quickstart_spec(side=5))
        assert run_result.deciding_nodes
        view = next(iter(run_result.decided_views))
        assert run_result.decisions_on(view)

    def test_sweep_report_check_specification_aggregates(self):
        report = ExperimentSession().run_sweep(
            SweepSpec(experiment=quickstart_spec(side=5), seeds=(0, 1))
        )
        aggregate = report.check_specification()
        assert aggregate.holds
        assert aggregate.checked_runs == 2
        assert "holds" in aggregate.summary()

    def test_as_dict_payload_shape(self):
        result = ExperimentSession().run(quickstart_spec(side=5))
        payload = result.as_dict()
        assert payload["type"] == "run"
        assert payload["specification"]["holds"] is True
        assert payload["digest"] == result.digest()
        assert payload["metrics"]["decisions"] == result.metrics.decisions


class TestRunSpecConveniences:
    def test_run_spec_dispatches_on_spec_type(self):
        assert isinstance(run_spec(quickstart_spec(side=5)), RunResult)
        report = run_spec(SweepSpec(experiment=quickstart_spec(side=5), seeds=(0,)))
        assert len(report) == 1

    def test_run_spec_json_round_trips_through_documents(self):
        from repro.api import run_spec_json

        result = run_spec_json(quickstart_spec(side=5).to_json())
        assert result.specification.holds

    def test_membership_spec_static_detection(self):
        assert MembershipSpec().is_static
        assert MembershipSpec("flash_crowd", {"count": 0}).is_static
        assert not MembershipSpec("flash_crowd", {"count": 2}).is_static
        assert not MembershipSpec("steady_churn").is_static

    def test_runtime_spec_resolvers(self):
        runtime = RuntimeSpec(
            latency={"kind": "uniform", "low": 0.5, "high": 1.5},
            failure_detector={"kind": "perfect", "detection_delay": 2.0},
        )
        assert runtime.resolve_latency().low == 0.5
        assert runtime.resolve_failure_detector().detection_delay == 2.0
        assert RuntimeSpec().resolve_latency() is None
        with pytest.raises(SpecError):
            RuntimeSpec(latency={"kind": "wormhole"}).resolve_latency()
