"""Unit tests for the run harness, the process base classes and misc pieces."""

from __future__ import annotations

import pytest

from repro import CliffEdgeNode, build_simulator, region_crash, run_cliff_edge
from repro.core import ConstantValuePolicy
from repro.failures import CrashSchedule
from repro.graph.generators import grid
from repro.sim import IdleProcess, Simulator
from repro.sim.events import EventKind

from tests.support import FakeContext


class TestBuildSimulator:
    def test_builds_protocol_on_every_node(self, small_grid):
        schedule = region_crash(small_grid, [(2, 2)], at=1.0)
        sim = build_simulator(small_grid, schedule)
        assert isinstance(sim, Simulator)
        for node in small_grid.nodes:
            assert isinstance(sim.process(node), CliffEdgeNode)

    def test_rejects_schedule_outside_graph(self, small_grid):
        schedule = CrashSchedule((("nope", 1.0),))
        with pytest.raises(Exception):
            build_simulator(small_grid, schedule)

    def test_custom_policy_threaded_through(self, small_grid):
        schedule = region_crash(small_grid, [(2, 2)], at=1.0)
        sim = build_simulator(
            small_grid, schedule, decision_policy=ConstantValuePolicy("custom")
        )
        sim.run()
        decisions = sim.trace.of_kind(EventKind.DECIDED)
        assert decisions
        assert all(event.detail["decision"] == "custom" for event in decisions)

    def test_early_termination_threaded_through(self, small_grid):
        schedule = region_crash(small_grid, [(2, 2)], at=1.0)
        sim = build_simulator(small_grid, schedule, early_termination=True)
        node = sim.process((1, 2))
        assert isinstance(node, CliffEdgeNode)
        assert node.early_termination is True


class TestRunResult:
    @pytest.fixture(scope="class")
    def result(self):
        graph = grid(6, 6)
        schedule = region_crash(graph, [(2, 2), (2, 3)], at=1.0)
        return run_cliff_edge(graph, schedule, check=True)

    def test_decided_views_and_nodes(self, result):
        assert len(result.decided_views) == 1
        assert result.deciding_nodes == result.graph.border({(2, 2), (2, 3)})

    def test_decisions_on(self, result):
        view = next(iter(result.decided_views))
        assert len(result.decisions_on(view)) == len(result.deciding_nodes)
        from repro.graph import Region

        assert result.decisions_on(Region(frozenset({(0, 0)}))) == []

    def test_node_accessor(self, result):
        node = result.node((1, 2))
        assert isinstance(node, CliffEdgeNode)
        assert node.has_decided

    def test_labels_dict(self, result):
        result.labels["topology"] = "grid"
        assert result.labels["topology"] == "grid"

    def test_summary_contains_specification_status(self, result):
        assert "specification CD1-CD7: holds" in result.summary()

    def test_metrics_match_trace(self, result):
        assert result.metrics.decisions == len(result.decisions)
        assert result.metrics.messages_sent == len(result.trace.messages_sent())


class TestIdleProcess:
    def test_idle_process_does_nothing(self, small_grid):
        process = IdleProcess((0, 0))
        ctx = FakeContext(small_grid, (0, 0))
        process.on_start(ctx)
        process.on_crash(ctx, (0, 1))
        process.on_message(ctx, (0, 1), "payload")
        process.on_timer(ctx, "tag")
        assert ctx.sent == []
        assert ctx.monitored == set()

    def test_idle_process_usable_as_factory(self, small_grid):
        sim = Simulator(small_grid)
        sim.populate(IdleProcess)
        sim.schedule_crash((2, 2), 1.0)
        sim.run()
        # Nobody monitors anything, so the crash produces no notifications.
        assert sim.trace.of_kind(EventKind.CRASH_NOTIFIED) == []


class TestDescribeState:
    def test_describe_state_transitions(self, small_grid):
        node = CliffEdgeNode((1, 2))
        assert "idle" in node.describe_state()
        ctx = FakeContext(small_grid, (1, 2))
        node.on_start(ctx)
        node.on_crash(ctx, (2, 2))
        assert "proposing" in node.describe_state()
