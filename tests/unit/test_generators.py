"""Unit tests for the topology generators."""

from __future__ import annotations

import pytest

from repro.graph import GraphError
from repro.graph.generators import (
    barabasi_albert,
    chord_like,
    clustered_communities,
    complete,
    from_edge_list,
    grid,
    line,
    random_geometric,
    ring,
    square_region,
    star,
    torus,
    watts_strogatz,
)


class TestGrid:
    def test_size_and_degree(self):
        graph = grid(4, 3)
        assert len(graph) == 12
        assert graph.degree((0, 0)) == 2
        assert graph.degree((1, 1)) == 4

    def test_connected(self):
        assert grid(5, 5).is_connected()

    def test_diagonal_neighbourhood(self):
        graph = grid(3, 3, diagonal=True)
        assert graph.has_edge((0, 0), (1, 1))
        assert graph.degree((1, 1)) == 8

    def test_invalid_dimensions(self):
        with pytest.raises(GraphError):
            grid(0, 3)


class TestTorus:
    def test_every_node_has_degree_four(self):
        graph = torus(5, 4)
        assert all(graph.degree(node) == 4 for node in graph)

    def test_wraparound_edges(self):
        graph = torus(4, 4)
        assert graph.has_edge((0, 0), (3, 0))
        assert graph.has_edge((0, 0), (0, 3))

    def test_connected(self):
        assert torus(6, 6).is_connected()

    def test_too_small(self):
        with pytest.raises(GraphError):
            torus(2, 5)


class TestRingAndChord:
    def test_ring_single_successor(self):
        graph = ring(6)
        assert all(graph.degree(node) == 2 for node in graph)
        assert graph.has_edge(5, 0)

    def test_ring_successor_list(self):
        graph = ring(8, successors=2)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert all(graph.degree(node) == 4 for node in graph)

    def test_ring_invalid(self):
        with pytest.raises(GraphError):
            ring(2)
        with pytest.raises(GraphError):
            ring(5, successors=5)

    def test_chord_like_has_fingers(self):
        graph = chord_like(16, successors=1, fingers=True)
        assert graph.has_edge(0, 2)
        assert graph.has_edge(0, 4)
        assert graph.is_connected()

    def test_chord_like_without_fingers(self):
        assert chord_like(8, successors=2, fingers=False) == ring(8, 2)


class TestSimpleShapes:
    def test_complete(self):
        graph = complete(5)
        assert graph.edge_count == 10
        assert all(graph.degree(node) == 4 for node in graph)

    def test_complete_single_node(self):
        assert len(complete(1)) == 1

    def test_complete_invalid(self):
        with pytest.raises(GraphError):
            complete(0)

    def test_star(self):
        graph = star(4)
        assert graph.degree(0) == 4
        assert all(graph.degree(i) == 1 for i in range(1, 5))

    def test_star_invalid(self):
        with pytest.raises(GraphError):
            star(0)

    def test_line(self):
        graph = line(5)
        assert graph.edge_count == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_line_invalid(self):
        with pytest.raises(GraphError):
            line(1)

    def test_from_edge_list(self):
        graph = from_edge_list([("x", "y")])
        assert graph.has_edge("x", "y")


class TestRandomGraphs:
    def test_random_geometric_deterministic(self):
        first = random_geometric(30, 0.35, seed=7)
        second = random_geometric(30, 0.35, seed=7)
        assert first == second

    def test_random_geometric_connected(self):
        graph = random_geometric(40, 0.3, seed=1)
        assert graph.is_connected()

    def test_random_geometric_impossible_radius(self):
        with pytest.raises(GraphError):
            random_geometric(50, 0.01, seed=0)

    def test_random_geometric_too_small(self):
        with pytest.raises(GraphError):
            random_geometric(1, 0.5)

    def test_watts_strogatz_basics(self):
        graph = watts_strogatz(20, 4, 0.1, seed=3)
        assert len(graph) == 20
        assert graph.edge_count >= 20 * 4 // 2 - 5

    def test_watts_strogatz_deterministic(self):
        assert watts_strogatz(20, 4, 0.3, seed=5) == watts_strogatz(20, 4, 0.3, seed=5)

    def test_watts_strogatz_invalid(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(4, 4, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz(10, 4, 1.5)

    def test_barabasi_albert_basics(self):
        graph = barabasi_albert(30, 2, seed=2)
        assert len(graph) == 30
        assert graph.is_connected()

    def test_barabasi_albert_deterministic(self):
        assert barabasi_albert(25, 2, seed=9) == barabasi_albert(25, 2, seed=9)

    def test_barabasi_albert_invalid(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(2, 3)

    def test_clustered_communities_structure(self):
        graph = clustered_communities(3, 5, seed=4)
        assert len(graph) == 15
        assert graph.is_connected()
        assert graph.has_edge((0, 0), (0, 1))

    def test_clustered_communities_invalid(self):
        with pytest.raises(GraphError):
            clustered_communities(0, 5)
        with pytest.raises(GraphError):
            clustered_communities(2, 4, intra_probability=0.0)


class TestSquareRegion:
    def test_square_region_members(self):
        members = square_region((1, 2), 2)
        assert members == frozenset({(1, 2), (1, 3), (2, 2), (2, 3)})

    def test_square_region_is_connected_in_torus(self):
        graph = torus(8, 8)
        assert graph.is_connected_subset(square_region((1, 1), 3))
