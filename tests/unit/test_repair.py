"""Unit tests for the overlay-repair application layer."""

from __future__ import annotations

import pytest

from repro.core.properties import Decision
from repro.graph import GraphError, Region
from repro.repair import (
    RepairError,
    RepairPlan,
    RingOverlay,
    RingRepairPolicy,
    apply_decisions,
    plan_for_view,
)


@pytest.fixture
def overlay():
    return RingOverlay(16, successors=2)


class TestRingOverlay:
    def test_validation(self):
        with pytest.raises(GraphError):
            RingOverlay(3)
        with pytest.raises(GraphError):
            RingOverlay(8, successors=0)
        with pytest.raises(GraphError):
            RingOverlay(8, successors=8)

    def test_knowledge_graph_matches_successor_lists(self, overlay):
        graph = overlay.knowledge_graph()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(0, 3)
        assert len(graph) == 16

    def test_knowledge_graph_with_fingers(self):
        overlay = RingOverlay(16, successors=1, fingers=True)
        graph = overlay.knowledge_graph()
        assert graph.has_edge(0, 4)

    def test_successor_predecessor(self, overlay):
        assert overlay.successor(15) == 0
        assert overlay.predecessor(0) == 15
        assert overlay.successor(3, hop=2) == 5
        assert overlay.predecessor(3, hop=4) == 15

    def test_arc(self, overlay):
        assert overlay.arc(14, 4) == (14, 15, 0, 1)
        with pytest.raises(GraphError):
            overlay.arc(0, 16)
        with pytest.raises(GraphError):
            overlay.arc(99, 2)

    def test_live_successor_and_predecessor(self, overlay):
        crashed = {5, 6, 7}
        assert overlay.live_successor(4, crashed) == 8
        assert overlay.live_predecessor(8, crashed) == 4
        assert overlay.live_successor(0, set()) == 1

    def test_live_successor_all_crashed(self, overlay):
        everyone_else = set(range(1, 16))
        with pytest.raises(GraphError):
            overlay.live_successor(0, everyone_else)

    def test_crashed_arcs_single_run(self, overlay):
        assert overlay.crashed_arcs({5, 6, 7}) == [(5, 6, 7)]

    def test_crashed_arcs_multiple_runs(self, overlay):
        arcs = overlay.crashed_arcs({2, 3, 9})
        assert sorted(arcs) == [(2, 3), (9,)]

    def test_crashed_arcs_wraparound(self, overlay):
        assert overlay.crashed_arcs({15, 0, 1}) == [(15, 0, 1)]

    def test_crashed_arcs_empty_and_full(self, overlay):
        assert overlay.crashed_arcs(set()) == []
        with pytest.raises(GraphError):
            overlay.crashed_arcs(set(range(16)))

    def test_ring_is_closed_healthy(self, overlay):
        assert overlay.ring_is_closed(set())

    def test_ring_broken_by_long_gap(self, overlay):
        # A gap longer than the successor list cannot be bridged natively.
        assert not overlay.ring_is_closed({5, 6, 7})

    def test_short_gap_absorbed_by_successor_list(self, overlay):
        # A single crashed node is bridged by the 2-hop successor link.
        assert overlay.ring_is_closed({5})

    def test_ring_closed_with_repair_edge(self, overlay):
        assert overlay.ring_is_closed({5, 6, 7}, extra_edges=[(4, 8)])

    def test_survivor_graph(self, overlay):
        survivor = overlay.survivor_graph({5, 6, 7}, extra_edges=[(4, 8)])
        assert 5 not in survivor
        assert survivor.has_edge(4, 8)
        assert survivor.is_connected()


class TestRepairPlans:
    def test_plan_bridges_each_arc(self, overlay):
        view = Region(frozenset({5, 6, 7}))
        plan = plan_for_view(overlay, view, coordinator=4)
        assert plan.new_edges == ((4, 8),)
        assert plan.coordinator == 4
        assert "bridge" in plan.describe()
        assert plan.wire_size() > 0

    def test_plan_for_wraparound_arc(self, overlay):
        view = Region(frozenset({15, 0}))
        plan = plan_for_view(overlay, view, coordinator=14)
        assert plan.new_edges == ((14, 1),)

    def test_plan_is_proposer_independent(self, overlay):
        view = Region(frozenset({5, 6, 7}))
        plan_a = plan_for_view(overlay, view, coordinator=4)
        plan_b = plan_for_view(overlay, view, coordinator=9)
        assert plan_a.new_edges == plan_b.new_edges

    def test_policy_select_and_pick(self, overlay):
        policy = RingRepairPolicy(overlay)
        graph = overlay.knowledge_graph()
        view = Region(frozenset({5, 6, 7}))
        values = {
            9: policy.select_value(graph, view, 9),
            4: policy.select_value(graph, view, 4),
        }
        picked = policy.pick(graph, view, values)
        assert picked.coordinator == 4
        assert picked.new_edges == ((4, 8),)

    def test_policy_pick_empty_rejected(self, overlay):
        policy = RingRepairPolicy(overlay)
        with pytest.raises(ValueError):
            policy.pick(overlay.knowledge_graph(), Region(frozenset({5})), {})


class TestRepairExecutor:
    def _decision(self, overlay, view_members, node, coordinator):
        view = Region(frozenset(view_members))
        return Decision(
            time=5.0,
            node=node,
            view=view,
            value=plan_for_view(overlay, view, coordinator=coordinator),
        )

    def test_apply_decisions_restores_ring(self, overlay):
        crashed = {5, 6, 7}
        decisions = [
            self._decision(overlay, crashed, node, coordinator=4) for node in (3, 4, 8, 9)
        ]
        outcome = apply_decisions(overlay, crashed, decisions)
        assert outcome.ring_restored
        assert outcome.survivors_connected
        assert outcome.installed_edges == ((4, 8),)
        assert outcome.coordinators == {Region(frozenset(crashed)): 4}
        assert "ring restored=True" in outcome.summary()

    def test_duplicate_identical_plans_deduplicated(self, overlay):
        crashed = {5}
        decisions = [
            self._decision(overlay, crashed, node, coordinator=4) for node in (3, 4, 6, 7)
        ]
        outcome = apply_decisions(overlay, crashed, decisions)
        assert len(outcome.plans) == 1

    def test_conflicting_plans_rejected(self, overlay):
        crashed = {5, 6, 7}
        first = self._decision(overlay, crashed, 4, coordinator=4)
        second = self._decision(overlay, crashed, 8, coordinator=8)
        with pytest.raises(RepairError):
            apply_decisions(overlay, crashed, [first, second])

    def test_non_plan_decision_rejected(self, overlay):
        decision = Decision(
            time=1.0, node=4, view=Region(frozenset({5})), value="not-a-plan"
        )
        with pytest.raises(RepairError):
            apply_decisions(overlay, {5}, [decision])

    def test_two_separate_views_both_repaired(self, overlay):
        crashed = {2, 3, 9, 10}
        view_a, view_b = {2, 3}, {9, 10}
        decisions = [
            self._decision(overlay, view_a, 1, coordinator=1),
            self._decision(overlay, view_a, 4, coordinator=1),
            self._decision(overlay, view_b, 8, coordinator=8),
            self._decision(overlay, view_b, 11, coordinator=8),
        ]
        outcome = apply_decisions(overlay, crashed, decisions)
        assert len(outcome.plans) == 2
        assert outcome.ring_restored
        assert outcome.survivors_connected
