"""Unit tests for table rendering and for the figure topologies."""

from __future__ import annotations

import pytest

from repro.experiments.tables import (
    format_markdown_table,
    format_table,
    rows_to_csv,
    summarise_numeric,
)
from repro.experiments.topologies import (
    FIG1_BYSTANDERS,
    FIG1_F1,
    FIG1_F1_BORDER,
    FIG1_F2,
    FIG1_F2_BORDER,
    FIG1_F3,
    FIG1_F3_BORDER,
    fig1_region_f1,
    fig1_region_f2,
    fig1_region_f3,
    fig1_topology,
    fig2_topology,
    fig3_topology,
)
from repro.graph import faulty_clusters, faulty_domains


ROWS = [
    {"name": "alpha", "count": 3, "ratio": 1.5, "ok": True},
    {"name": "beta", "count": 12, "ratio": 0.25, "ok": False, "extra": None},
]


class TestTables:
    def test_format_table_alignment_and_content(self):
        text = format_table(ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert any("alpha" in line for line in lines)
        assert any("0.25" in line for line in lines)
        assert any("yes" in line for line in lines)
        assert any("-" in line for line in lines)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="t").startswith("t")

    def test_format_table_explicit_columns(self):
        text = format_table(ROWS, columns=["count", "name"])
        header = text.splitlines()[0]
        assert header.index("count") < header.index("name")

    def test_markdown_table(self):
        text = format_markdown_table(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("| name |")
        assert lines[1].startswith("| ---")
        assert len(lines) == 2 + len(ROWS)

    def test_markdown_table_empty(self):
        assert format_markdown_table([]) == "(no rows)"

    def test_rows_to_csv(self):
        text = rows_to_csv(ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("name,count")
        assert "alpha,3" in lines[1]
        assert rows_to_csv([]) == ""

    def test_rows_to_csv_quoting(self):
        text = rows_to_csv([{"name": 'has,comma "quoted"'}])
        assert '"has,comma ""quoted"""' in text

    def test_summarise_numeric(self):
        summary = summarise_numeric(ROWS, "count")
        assert summary["min"] == 3
        assert summary["max"] == 12
        assert summary["mean"] == 7.5

    def test_summarise_numeric_empty(self):
        import math

        summary = summarise_numeric([], "count")
        assert math.isnan(summary["mean"])


class TestFig1Topology:
    def test_regions_are_connected(self):
        graph = fig1_topology()
        assert fig1_region_f1(graph).members == FIG1_F1
        assert fig1_region_f2(graph).members == FIG1_F2
        assert fig1_region_f3(graph).members == FIG1_F3

    def test_borders_match_the_paper(self):
        graph = fig1_topology()
        assert graph.border(FIG1_F1) == FIG1_F1_BORDER
        assert graph.border(FIG1_F2) == FIG1_F2_BORDER
        assert graph.border(FIG1_F3) == FIG1_F3_BORDER

    def test_f3_is_f1_plus_paris(self):
        assert FIG1_F3 == FIG1_F1 | {"paris"}
        assert "berlin" in FIG1_F3_BORDER
        assert "paris" not in FIG1_F3_BORDER

    def test_bystanders_never_border_crashed_regions(self):
        graph = fig1_topology()
        for bystander in FIG1_BYSTANDERS:
            assert bystander not in FIG1_F1_BORDER
            assert bystander not in FIG1_F2_BORDER
            assert bystander not in FIG1_F3_BORDER
            assert bystander in graph

    def test_graph_connected_and_f1_f2_disjoint_clusters(self):
        graph = fig1_topology()
        assert graph.is_connected()
        clusters = faulty_clusters(graph, FIG1_F1 | FIG1_F2)
        assert len(clusters) == 2

    def test_survivors_stay_connected_after_f3(self):
        graph = fig1_topology()
        assert graph.is_connected_subset(graph.nodes - FIG1_F3 - FIG1_F2)


class TestFig2Topology:
    def test_four_domains_one_cluster(self):
        layout = fig2_topology()
        domains = faulty_domains(layout.graph, layout.all_faulty())
        assert len(domains) == 4
        clusters = faulty_clusters(layout.graph, layout.all_faulty())
        assert len(clusters) == 1

    def test_chain_adjacency(self):
        from repro.graph import are_adjacent

        layout = fig2_topology()
        regions = sorted(layout.regions(), key=lambda r: sorted(map(repr, r.members)))
        by_name = {next(iter(sorted(map(repr, r.members))))[1:3]: r for r in regions}
        f1, f2, f3, f4 = (by_name[k] for k in ("f1", "f2", "f3", "f4"))
        assert are_adjacent(layout.graph, f1, f2)
        assert are_adjacent(layout.graph, f2, f3)
        assert are_adjacent(layout.graph, f3, f4)
        assert not are_adjacent(layout.graph, f1, f3)
        assert not are_adjacent(layout.graph, f1, f4)

    def test_borders_are_correct_nodes(self):
        layout = fig2_topology()
        faulty = layout.all_faulty()
        for region in layout.regions():
            assert region.border(layout.graph).isdisjoint(faulty)

    def test_graph_connected(self):
        layout = fig2_topology()
        assert layout.graph.is_connected()
        assert layout.graph.is_connected_subset(layout.graph.nodes - layout.all_faulty())


class TestFig3Topology:
    def test_waves_are_disjoint_and_adjacent(self):
        layout = fig3_topology()
        assert layout.first_wave.isdisjoint(layout.second_wave)
        for node in layout.second_wave:
            assert layout.graph.neighbours(node) & layout.first_wave

    def test_second_wave_is_part_of_first_border(self):
        layout = fig3_topology()
        border = layout.graph.border(layout.first_wave)
        assert set(layout.second_wave) <= border

    def test_combined_region_connected(self):
        layout = fig3_topology()
        assert layout.graph.is_connected_subset(layout.combined)

    def test_survivors_connected_after_both_waves(self):
        layout = fig3_topology()
        survivors = layout.graph.nodes - layout.combined
        assert layout.graph.is_connected_subset(survivors)
