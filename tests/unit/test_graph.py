"""Unit tests for the KnowledgeGraph substrate."""

from __future__ import annotations

import pytest

from repro.graph import GraphError, KnowledgeGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = KnowledgeGraph()
        assert len(graph) == 0
        assert graph.edge_count == 0
        assert graph.nodes == frozenset()

    def test_nodes_and_edges_counted(self):
        graph = KnowledgeGraph([("a", "b"), ("b", "c")])
        assert len(graph) == 3
        assert graph.edge_count == 2

    def test_isolated_nodes_allowed(self):
        graph = KnowledgeGraph([("a", "b")], nodes=["c"])
        assert "c" in graph
        assert graph.degree("c") == 0

    def test_duplicate_edges_collapse(self):
        graph = KnowledgeGraph([("a", "b"), ("b", "a"), ("a", "b")])
        assert graph.edge_count == 1
        assert graph.degree("a") == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            KnowledgeGraph([("a", "a")])

    def test_from_adjacency_symmetrises(self):
        graph = KnowledgeGraph.from_adjacency({"a": ["b"], "b": [], "c": ["a"]})
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")
        assert graph.has_edge("a", "c")
        assert len(graph) == 3

    def test_tuple_node_ids(self):
        graph = KnowledgeGraph([((0, 0), (0, 1))])
        assert (0, 0) in graph
        assert graph.has_edge((0, 1), (0, 0))


class TestBasicQueries:
    def test_neighbours(self, line_graph):
        assert line_graph.neighbours("b") == frozenset({"a", "c"})
        assert line_graph.neighbors("b") == frozenset({"a", "c"})

    def test_neighbours_unknown_node(self, line_graph):
        with pytest.raises(GraphError):
            line_graph.neighbours("zzz")

    def test_degree(self, line_graph):
        assert line_graph.degree("a") == 1
        assert line_graph.degree("c") == 2

    def test_has_edge(self, line_graph):
        assert line_graph.has_edge("a", "b")
        assert not line_graph.has_edge("a", "c")
        assert not line_graph.has_edge("a", "missing")

    def test_edges_listed_once(self, line_graph):
        edges = list(line_graph.edges())
        assert len(edges) == 4
        assert len({frozenset(edge) for edge in edges}) == 4

    def test_contains_and_iter(self, line_graph):
        assert "a" in line_graph
        assert "zzz" not in line_graph
        assert set(iter(line_graph)) == {"a", "b", "c", "d", "e"}

    def test_adjacency_mapping_copy(self, line_graph):
        mapping = line_graph.adjacency()
        assert mapping["a"] == frozenset({"b"})
        mapping["a"] = frozenset()
        assert line_graph.neighbours("a") == frozenset({"b"})

    def test_equality_and_hash(self):
        first = KnowledgeGraph([("a", "b"), ("b", "c")])
        second = KnowledgeGraph([("b", "c"), ("a", "b")])
        third = KnowledgeGraph([("a", "b")])
        assert first == second
        assert hash(first) == hash(second)
        assert first != third

    def test_repr(self, line_graph):
        assert "nodes=5" in repr(line_graph)
        assert "edges=4" in repr(line_graph)


class TestBorder:
    def test_border_of_single_node(self, line_graph):
        assert line_graph.border(["c"]) == frozenset({"b", "d"})

    def test_border_excludes_members(self, line_graph):
        assert line_graph.border(["b", "c"]) == frozenset({"a", "d"})

    def test_border_of_everything_is_empty(self, line_graph):
        assert line_graph.border(line_graph.nodes) == frozenset()

    def test_border_matches_paper_definition(self, diamond_graph):
        border = diamond_graph.border(["c1", "c2"])
        assert border == frozenset({"n1", "n2", "n3", "n4"})

    def test_closed_neighbourhood(self, diamond_graph):
        scope = diamond_graph.closed_neighbourhood(["c1"])
        assert scope == frozenset({"c1", "n1", "n2", "c2"})


class TestConnectivity:
    def test_empty_set_not_connected(self, line_graph):
        assert not line_graph.is_connected_subset([])

    def test_single_node_connected(self, line_graph):
        assert line_graph.is_connected_subset(["c"])

    def test_connected_subset(self, line_graph):
        assert line_graph.is_connected_subset(["a", "b", "c"])

    def test_disconnected_subset(self, line_graph):
        assert not line_graph.is_connected_subset(["a", "c"])

    def test_unknown_node_raises(self, line_graph):
        with pytest.raises(GraphError):
            line_graph.is_connected_subset(["a", "zzz"])

    def test_whole_graph_connected(self, small_grid):
        assert small_grid.is_connected()

    def test_connected_components_partition(self, line_graph):
        components = line_graph.connected_components(["a", "b", "d", "e"])
        assert components == frozenset(
            {frozenset({"a", "b"}), frozenset({"d", "e"})}
        )

    def test_connected_components_empty(self, line_graph):
        assert line_graph.connected_components([]) == frozenset()

    def test_connected_components_single(self, line_graph):
        assert line_graph.connected_components(["c"]) == frozenset({frozenset({"c"})})


class TestPathsAndSubgraphs:
    def test_shortest_path_to_self(self, line_graph):
        assert line_graph.shortest_path_length("a", "a") == 0

    def test_shortest_path_length(self, line_graph):
        assert line_graph.shortest_path_length("a", "e") == 4

    def test_shortest_path_unreachable(self):
        graph = KnowledgeGraph([("a", "b")], nodes=["c"])
        assert graph.shortest_path_length("a", "c") is None

    def test_shortest_path_unknown_nodes(self, line_graph):
        with pytest.raises(GraphError):
            line_graph.shortest_path_length("a", "zzz")

    def test_subgraph(self, line_graph):
        sub = line_graph.subgraph(["a", "b", "c"])
        assert len(sub) == 3
        assert sub.has_edge("a", "b")
        assert not sub.has_edge("c", "d")

    def test_subgraph_unknown_node(self, line_graph):
        with pytest.raises(GraphError):
            line_graph.subgraph(["a", "zzz"])

    def test_without(self, line_graph):
        survivor = line_graph.without(["c"])
        assert "c" not in survivor
        assert not survivor.is_connected()

    def test_to_networkx_roundtrip(self, line_graph):
        nx_graph = line_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4
