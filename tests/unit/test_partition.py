"""Unit tests for the partitioned-backend building blocks.

The end-to-end digest contract lives in
``tests/integration/test_partitioned_determinism.py``; this module covers
the pieces in isolation: the graph partitioner, the keyed scheduler, the
window runner, and the envelope/validation surfaces.
"""

from __future__ import annotations

import pickle

import pytest

from repro.graph.generators import grid, line, torus
from repro.sim import PartitionEnvelope
from repro.sim.latency import ConstantLatency, PerPairLatency
from repro.sim.partition import (
    PartitionError,
    _cross_lookahead,
    partition_graph,
)
from repro.sim.scheduler import (
    EventScheduler,
    KeyedEventScheduler,
    SchedulerError,
)


class TestPartitionGraph:
    def test_shards_cover_and_do_not_overlap(self):
        graph = torus(8, 8)
        for count in (1, 2, 3, 4, 7):
            shards = partition_graph(graph, count)
            assert len(shards) == count
            seen: set = set()
            for shard in shards:
                assert shard
                assert not (shard & seen)
                seen |= shard
            assert seen == graph.nodes

    def test_shards_are_balanced(self):
        # Perfect balance is not always geometrically possible (a shard's
        # frontier can be boxed in); the load-balancing claim is "within a
        # few nodes", which a 25% slack comfortably bounds.
        graph = torus(8, 8)
        for count in (2, 4):
            sizes = sorted(len(shard) for shard in partition_graph(graph, count))
            average = sum(sizes) / count
            assert sizes[-1] <= 1.25 * average + 1

    def test_shards_are_contiguous_on_a_torus(self):
        graph = torus(8, 8)
        for shard in partition_graph(graph, 4):
            assert graph.is_connected_subset(shard)

    def test_partitioning_is_deterministic(self):
        graph = torus(6, 6)
        assert partition_graph(graph, 3) == partition_graph(graph, 3)

    def test_single_partition_is_everything(self):
        graph = grid(4, 4)
        assert partition_graph(graph, 1) == (graph.nodes,)

    def test_invalid_counts_rejected(self):
        graph = line(4)
        with pytest.raises(PartitionError):
            partition_graph(graph, 0)
        with pytest.raises(PartitionError):
            partition_graph(graph, 5)

    def test_line_split_is_an_interval(self):
        graph = line(10)
        shards = partition_graph(graph, 2)
        for shard in shards:
            assert graph.is_connected_subset(shard)


class TestLookahead:
    def test_constant_latency(self):
        assert _cross_lookahead(ConstantLatency(2.5)) == 2.5

    def test_per_pair_latency_takes_the_minimum(self):
        model = PerPairLatency((((0, 1), 0.25),), default=1.0)
        assert _cross_lookahead(model) == 0.25

    def test_random_latency_rejected(self):
        from repro.sim.latency import UniformLatency

        with pytest.raises(PartitionError):
            _cross_lookahead(UniformLatency(0.5, 1.5))


class TestKeyedScheduler:
    def test_orders_equal_timestamps_by_key_not_insertion(self):
        scheduler = KeyedEventScheduler()
        order: list[str] = []
        scheduler.schedule_keyed(1.0, (0, 5), lambda: order.append("late-key"))
        scheduler.schedule_keyed(1.0, (0, 1), lambda: order.append("early-key"))
        scheduler.schedule_keyed(0.5, (0, 9), lambda: order.append("earlier-time"))
        scheduler.run()
        assert order == ["earlier-time", "early-key", "late-key"]

    def test_nested_genealogical_keys_compare(self):
        scheduler = KeyedEventScheduler()
        order: list[str] = []
        parent = (0, 3)
        scheduler.schedule_keyed(
            2.0, (2, 1.0, parent, (1, "'b'")), lambda: order.append("fanout-b")
        )
        scheduler.schedule_keyed(
            2.0, (2, 1.0, parent, (0, 0)), lambda: order.append("counter-0")
        )
        scheduler.schedule_keyed(
            2.0, (2, 1.0, parent, (1, "'a'")), lambda: order.append("fanout-a")
        )
        scheduler.run()
        assert order == ["counter-0", "fanout-a", "fanout-b"]

    def test_plain_scheduling_is_disabled(self):
        scheduler = KeyedEventScheduler()
        with pytest.raises(SchedulerError):
            scheduler.schedule(1.0, lambda: None)
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        scheduler = KeyedEventScheduler()
        scheduler.schedule_keyed(1.0, (0, 0), lambda: None)
        scheduler.run()
        with pytest.raises(SchedulerError):
            scheduler.schedule_keyed(0.5, (0, 1), lambda: None)


class TestRunWindow:
    @staticmethod
    def _filled(times):
        scheduler = KeyedEventScheduler()
        fired: list[float] = []
        for index, time in enumerate(times):
            scheduler.schedule_keyed(time, (0, index), lambda t=time: fired.append(t))
        return scheduler, fired

    def test_excludes_the_bound(self):
        scheduler, fired = self._filled((0.5, 1.0, 1.5, 2.0))
        executed = scheduler.run_window(1.5)
        assert fired == [0.5, 1.0]
        assert executed == 2
        assert scheduler.next_event_time() == 1.5

    def test_inclusive_window_takes_the_bound(self):
        scheduler, fired = self._filled((0.5, 1.0, 1.5, 2.0))
        assert scheduler.run_window(1.5, inclusive=True) == 3
        assert fired == [0.5, 1.0, 1.5]

    def test_clock_is_not_advanced_past_the_last_event(self):
        scheduler, _fired = self._filled((0.5,))
        scheduler.run_window(10.0)
        assert scheduler.now == 0.5
        # A later window may still inject at any time >= now.
        scheduler.schedule_keyed(0.75, (0, 9), lambda: None)

    def test_budget_is_respected(self):
        scheduler, _fired = self._filled((0.1, 0.2, 0.3))
        assert scheduler.run_window(1.0, max_events=2) == 2
        assert scheduler.next_event_time() == pytest.approx(0.3)

    def test_next_event_time_empty(self):
        assert EventScheduler().next_event_time() is None


class TestPartitionEnvelope:
    def test_envelopes_pickle_round_trip(self):
        envelope = PartitionEnvelope(
            delivery_time=2.0,
            key=(2, 1.0, (0, 3), (0, 1)),
            source=(0, 0),
            target=(4, 4),
            payload={"round": 1},
            target_incarnation=2,
        )
        assert pickle.loads(pickle.dumps(envelope)) == envelope
