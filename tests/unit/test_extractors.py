"""Unit tests for result extractors and the spec presets behind them.

The contract under test: a spec with an ``extract`` block runs
digest-identically to the classic imperative code path, and the
extractor's row reproduces the classic experiment's numbers — the
``extract`` block changes what is *observed*, never what *happens*.
(The lone exception is ``repair``, whose decision policy legitimately
shapes the run — there the digest must match the classic
policy-driven run instead.)
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.api import (
    EXTRACTOR_KINDS,
    ExperimentSpec,
    RuntimeSpec,
    SpecError,
    get_extractor,
    locality_sweep_spec,
    quickstart_spec,
    repair_spec,
    run_spec,
)


class TestLocalityExtractor:
    def test_l1_point_is_digest_identical_to_classic_sweep(self):
        from repro.experiments.locality import run_torus_region_scenario

        sweep = locality_sweep_spec("l1", sides=(8,), region_side=3)
        (spec,) = list(sweep.expand())
        result = run_spec(spec)
        classic, region = run_torus_region_scenario(8, 3)
        assert result.digest() == classic.digest()
        row = result.labels["extract"]
        assert row["system_size"] == 64
        assert row["region_size"] == len(region)
        assert row["messages"] == classic.metrics.messages_sent

    def test_l2_rows_match_classic_region_sweep(self):
        from repro.experiments.locality import region_size_sweep

        sweep = locality_sweep_spec("l2", side=8, region_sides=(1, 2))
        report = run_spec(sweep)
        classic = region_size_sweep(region_sides=(1, 2), side=8)
        rows = [run["extract"] for run in report.as_dict()["runs"]]
        assert [row["messages"] for row in rows] == [
            point.messages for point in classic
        ]
        assert [row["border_size"] for row in rows] == [
            point.border_size for point in classic
        ]

    def test_coupled_axis_moves_width_and_height_together(self):
        sweep = locality_sweep_spec("l1", sides=(8, 12))
        expanded = list(sweep.expand())
        dims = [
            (s.topology.params["width"], s.topology.params["height"])
            for s in expanded
        ]
        assert dims == [(8, 8), (12, 12)]


class TestRepairExtractor:
    def test_run_is_digest_identical_to_classic_repair(self):
        from repro.experiments.overlay_repair import run_overlay_repair

        spec = repair_spec(ring_size=16, arc_start=3, arc_length=3)
        result = run_spec(spec)
        classic = run_overlay_repair(ring_size=16, arc_start=3, arc_length=3)
        assert result.digest() == classic.result.digest()
        row = result.labels["extract"]
        assert row == classic.point().as_row()

    def test_policy_needs_the_sequential_simulator(self):
        spec = repair_spec(ring_size=16)
        partitioned = replace(spec, runtime=RuntimeSpec(partitions=2))
        with pytest.raises(SpecError):
            run_spec(partitioned)

    def test_unknown_extract_kind_is_rejected(self):
        assert set(EXTRACTOR_KINDS) == {"locality", "repair"}
        with pytest.raises(SpecError):
            get_extractor("phrenology")
        base = quickstart_spec()
        unknown = ExperimentSpec(
            topology=base.topology,
            failure=base.failure,
            extract={"kind": "phrenology"},
        )
        with pytest.raises(SpecError):
            run_spec(unknown)


class TestExtractField:
    def test_round_trips_through_json(self):
        spec = repair_spec(ring_size=16)
        restored = ExperimentSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.extract["kind"] == "repair"

    def test_absent_extract_is_not_serialized(self):
        document = quickstart_spec().to_dict()
        assert "extract" not in document
        json.dumps(document)

    def test_extract_changes_the_spec_digest_only_when_present(self):
        plain = quickstart_spec()
        observed = replace(plain, extract={"kind": "locality"})
        assert plain.digest() != observed.digest()
