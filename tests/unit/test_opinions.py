"""Unit tests for opinion values, opinion vectors and round messages."""

from __future__ import annotations

import pytest

from repro.core import (
    REJECT,
    Accept,
    ApplicationMessage,
    OpinionVector,
    RoundMessage,
    is_accept,
    is_bottom,
    is_reject,
)
from repro.graph import Region


class TestOpinionValues:
    def test_accept_wraps_value(self):
        opinion = Accept("plan")
        assert opinion.value == "plan"
        assert is_accept(opinion)
        assert not is_reject(opinion)
        assert not is_bottom(opinion)

    def test_reject_is_singleton(self):
        from repro.core.opinions import _Reject

        assert _Reject() is REJECT
        assert is_reject(REJECT)
        assert not is_accept(REJECT)
        assert repr(REJECT) == "REJECT"

    def test_bottom_is_none(self):
        assert is_bottom(None)
        assert not is_bottom(REJECT)

    def test_accept_equality(self):
        assert Accept(1) == Accept(1)
        assert Accept(1) != Accept(2)


class TestOpinionVector:
    def test_starts_all_bottom(self):
        vector = OpinionVector(["a", "b"])
        assert vector.unknown() == frozenset({"a", "b"})
        assert not vector.all_accept()

    def test_set_and_get(self):
        vector = OpinionVector(["a", "b"])
        vector.set("a", Accept(1))
        assert vector["a"] == Accept(1)
        assert vector.get("b") is None
        assert "a" in vector
        assert "z" not in vector

    def test_set_unknown_node_rejected(self):
        vector = OpinionVector(["a"])
        with pytest.raises(KeyError):
            vector.set("z", Accept(1))

    def test_set_bottom_rejected(self):
        vector = OpinionVector(["a"])
        with pytest.raises(ValueError):
            vector.set("a", None)

    def test_first_writer_wins(self):
        """Line 24 of Algorithm 1 never overwrites a known opinion."""
        vector = OpinionVector(["a"])
        vector.set("a", Accept("first"))
        vector.set("a", REJECT)
        assert vector["a"] == Accept("first")

    def test_merge_only_fills_bottom(self):
        vector = OpinionVector(["a", "b", "c"])
        vector.set("a", Accept(1))
        updated = vector.merge({"a": REJECT, "b": Accept(2), "c": None, "z": Accept(9)})
        assert updated == ["b"]
        assert vector["a"] == Accept(1)
        assert vector["b"] == Accept(2)
        assert vector["c"] is None

    def test_queries(self):
        vector = OpinionVector(["a", "b", "c"])
        vector.set("a", Accept(1))
        vector.set("b", REJECT)
        assert vector.accepters() == frozenset({"a"})
        assert vector.rejectors() == frozenset({"b"})
        assert vector.unknown() == frozenset({"c"})
        assert vector.accepted_values() == {"a": 1}

    def test_all_accept(self):
        vector = OpinionVector(["a", "b"])
        vector.set("a", Accept(1))
        assert not vector.all_accept()
        vector.set("b", Accept(2))
        assert vector.all_accept()

    def test_from_mapping_and_equality(self):
        vector = OpinionVector.from_mapping({"a": Accept(1), "b": None})
        assert vector["a"] == Accept(1)
        assert vector == {"a": Accept(1), "b": None}
        assert vector == OpinionVector.from_mapping({"a": Accept(1), "b": None})
        assert vector != OpinionVector.from_mapping({"a": Accept(2), "b": None})

    def test_members_and_repr(self):
        vector = OpinionVector(["b", "a"])
        assert vector.members == frozenset({"a", "b"})
        assert "OpinionVector" in repr(vector)

    def test_as_mapping_is_copy(self):
        vector = OpinionVector(["a"])
        mapping = vector.as_mapping()
        mapping["a"] = Accept(5)
        assert vector["a"] is None


class TestRoundMessage:
    def test_fields_and_freezing(self):
        view = Region(frozenset({"x"}))
        message = RoundMessage(1, view, {"a", "b"}, {"a": Accept(1), "b": None})
        assert message.round == 1
        assert message.view == view
        assert isinstance(message.border, frozenset)
        assert message.opinions["a"] == Accept(1)

    def test_round_must_be_positive(self):
        view = Region(frozenset({"x"}))
        with pytest.raises(ValueError):
            RoundMessage(0, view, frozenset({"a"}), {})

    def test_is_rejection(self):
        view = Region(frozenset({"x"}))
        accepting = RoundMessage(1, view, frozenset({"a"}), {"a": Accept(1)})
        rejecting = RoundMessage(1, view, frozenset({"a"}), {"a": REJECT})
        assert not accepting.is_rejection()
        assert rejecting.is_rejection()

    def test_known_entries(self):
        view = Region(frozenset({"x"}))
        message = RoundMessage(
            1, view, frozenset({"a", "b", "c"}), {"a": Accept(1), "b": None, "c": REJECT}
        )
        assert message.known_entries() == 2

    def test_wire_size_grows_with_border(self):
        view = Region(frozenset({"x"}))
        small = RoundMessage(1, view, frozenset({"a"}), {"a": Accept(1)})
        large = RoundMessage(
            1,
            view,
            frozenset({"a", "b", "c", "d"}),
            {"a": Accept(1), "b": Accept(2), "c": Accept(3), "d": Accept(4)},
        )
        assert large.wire_size() > small.wire_size()

    def test_describe(self):
        view = Region(frozenset({"x"}))
        message = RoundMessage(2, view, frozenset({"a"}), {"a": Accept(1)})
        text = message.describe()
        assert "r=2" in text
        assert "accepts=1" in text


class TestApplicationMessage:
    def test_fields_and_wire_size(self):
        message = ApplicationMessage("gossip", frozenset({"a"}))
        assert message.topic == "gossip"
        assert message.wire_size() > 16
