"""Unit tests for canonical trace digests (repro.trace.digest)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.graph import Region
from repro.sim.events import EventKind, TraceEvent
from repro.trace import TraceRecorder, canonical_text, combine_digests, trace_digest


class TestCanonicalText:
    def test_primitives(self):
        assert canonical_text(None) == "None"
        assert canonical_text(3) == "3"
        assert canonical_text(2.5) == "2.5"
        assert canonical_text("x") == "'x'"

    def test_sets_are_sorted(self):
        assert canonical_text(frozenset({"b", "a"})) == canonical_text({"a", "b"})
        assert canonical_text({3, 1, 2}) == "{1, 2, 3}"

    def test_mappings_are_sorted_by_key(self):
        assert canonical_text({"b": 1, "a": 2}) == canonical_text(
            dict([("a", 2), ("b", 1)])
        )

    def test_dataclasses_render_in_field_order(self):
        region = Region(frozenset({(1, 2), (0, 0)}))
        text = canonical_text(region)
        assert text.startswith("Region(members=")
        assert canonical_text(Region(frozenset({(0, 0), (1, 2)}))) == text

    def test_enum(self):
        assert canonical_text(EventKind.DECIDED) == "EventKind.DECIDED"

    def test_nested_event(self):
        event = TraceEvent(
            time=1.0,
            kind=EventKind.MESSAGE_SENT,
            node="a",
            peer="b",
            payload=frozenset({"y", "x"}),
            detail={"k": {"z", "a"}},
        )
        assert canonical_text(event) == canonical_text(
            TraceEvent(
                time=1.0,
                kind=EventKind.MESSAGE_SENT,
                node="a",
                peer="b",
                payload=frozenset({"x", "y"}),
                detail={"k": {"a", "z"}},
            )
        )


class TestTraceDigest:
    def test_digest_changes_with_content(self):
        recorder = TraceRecorder()
        recorder.emit(0.0, EventKind.NODE_STARTED, node="a")
        first = recorder.digest()
        recorder.emit(1.0, EventKind.NODE_CRASHED, node="a")
        assert recorder.digest() != first

    def test_kind_filter(self):
        recorder = TraceRecorder()
        recorder.emit(0.0, EventKind.NODE_STARTED, node="a")
        recorder.emit(1.0, EventKind.DECIDED, node="a", payload="v")
        other = TraceRecorder()
        other.emit(0.5, EventKind.NODE_STARTED, node="b")
        other.emit(1.0, EventKind.DECIDED, node="a", payload="v")
        assert recorder.digest() != other.digest()
        assert recorder.digest(EventKind.DECIDED) == other.digest(EventKind.DECIDED)

    def test_trace_digest_matches_recorder_digest(self):
        recorder = TraceRecorder()
        recorder.emit(0.0, EventKind.NODE_STARTED, node="a")
        assert trace_digest(recorder.events) == recorder.digest()

    def test_combine_digests_is_order_sensitive(self):
        assert combine_digests(["a", "b"]) != combine_digests(["b", "a"])
        assert combine_digests([]) == combine_digests([])


_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments import run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import grid
graph = grid(5, 5)
schedule = region_crash(graph, [(1, 1), (1, 2)], at=1.0)
print(run_cliff_edge(graph, schedule, seed=3).digest())
"""


class TestHashSeedIndependence:
    def test_digest_survives_different_hash_seeds(self):
        """The whole point: digests must compare across interpreters.

        ``frozenset``/``dict`` iteration order varies with
        PYTHONHASHSEED, which differs between independently *spawned*
        workers; a repr-based digest would diverge.
        """
        src = str(Path(__file__).resolve().parents[2] / "src")
        digests = set()
        for hash_seed in ("1", "2"):
            result = subprocess.run(
                [sys.executable, "-c", _CHILD_SCRIPT.format(src=src)],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1
