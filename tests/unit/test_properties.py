"""Unit tests for the CD1–CD7 trace checkers.

Each checker is exercised with hand-built traces that satisfy and violate
its property, so that the integration tests' "specification holds" verdicts
actually mean something.
"""

from __future__ import annotations

import pytest

from repro.core.properties import (
    Decision,
    check_all,
    check_border_termination,
    check_integrity,
    check_locality,
    check_progress,
    check_uniform_border_agreement,
    check_view_accuracy,
    check_view_convergence,
    extract_decisions,
    assert_specification,
)
from repro.graph import KnowledgeGraph, Region
from repro.sim import EventKind
from repro.trace import TraceRecorder


@pytest.fixture
def check_graph():
    """v1-v2 is the crashed region; a, b, c are its border; z is far away."""
    return KnowledgeGraph(
        [
            ("v1", "v2"),
            ("a", "v1"),
            ("b", "v2"),
            ("c", "v1"),
            ("c", "v2"),
            ("a", "b"),
            ("b", "z"),
        ]
    )


def crashed_region(graph) -> Region:
    return Region.of(graph, ["v1", "v2"])


def base_trace(graph, decide_nodes=("a", "b", "c"), value="plan") -> TraceRecorder:
    """A well-formed trace: the region crashes, all border nodes decide."""
    trace = TraceRecorder()
    view = crashed_region(graph)
    trace.emit(1.0, EventKind.NODE_CRASHED, node="v1")
    trace.emit(1.0, EventKind.NODE_CRASHED, node="v2")
    for node in decide_nodes:
        trace.emit(2.0, EventKind.MESSAGE_SENT, node=node, peer="a", payload="m")
    for index, node in enumerate(decide_nodes):
        trace.emit(5.0 + index, EventKind.DECIDED, node=node, payload=view, decision=value)
    return trace


class TestDecisionExtraction:
    def test_extract_decisions(self, check_graph):
        trace = base_trace(check_graph)
        decisions = extract_decisions(trace)
        assert len(decisions) == 3
        assert all(isinstance(decision, Decision) for decision in decisions)
        assert decisions[0].value == "plan"

    def test_from_event_rejects_other_kinds(self, check_graph):
        trace = base_trace(check_graph)
        with pytest.raises(ValueError):
            Decision.from_event(trace.crashes()[0])


class TestIntegrity:
    def test_holds(self, check_graph):
        assert check_integrity(base_trace(check_graph)).holds

    def test_violated_by_double_decision(self, check_graph):
        trace = base_trace(check_graph)
        view = crashed_region(check_graph)
        trace.emit(9.0, EventKind.DECIDED, node="a", payload=view, decision="plan")
        report = check_integrity(trace)
        assert not report.holds
        assert "twice" in report.violations[0]


class TestViewAccuracy:
    def test_holds(self, check_graph):
        assert check_view_accuracy(check_graph, base_trace(check_graph)).holds

    def test_violated_by_non_crashed_member(self, check_graph):
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v1")
        view = crashed_region(check_graph)  # contains v2, which never crashed
        trace.emit(5.0, EventKind.DECIDED, node="a", payload=view, decision="d")
        assert not check_view_accuracy(check_graph, trace).holds

    def test_violated_by_decision_before_crash(self, check_graph):
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v1")
        trace.emit(2.0, EventKind.DECIDED, node="a",
                   payload=crashed_region(check_graph), decision="d")
        trace.emit(9.0, EventKind.NODE_CRASHED, node="v2")
        assert not check_view_accuracy(check_graph, trace).holds

    def test_violated_by_non_border_decider(self, check_graph):
        trace = base_trace(check_graph)
        trace.emit(9.0, EventKind.DECIDED, node="z",
                   payload=crashed_region(check_graph), decision="plan")
        report = check_view_accuracy(check_graph, trace)
        assert not report.holds
        assert "border" in report.violations[0]

    def test_violated_by_disconnected_view(self, check_graph):
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v1")
        trace.emit(1.0, EventKind.NODE_CRASHED, node="z")
        disconnected = Region(frozenset({"v1", "z"}))
        trace.emit(5.0, EventKind.DECIDED, node="b", payload=disconnected, decision="d")
        assert not check_view_accuracy(check_graph, trace).holds


class TestLocality:
    def test_holds_for_border_traffic(self, check_graph):
        assert check_locality(check_graph, base_trace(check_graph)).holds

    def test_violated_by_far_away_traffic(self, check_graph):
        trace = base_trace(check_graph)
        trace.emit(3.0, EventKind.MESSAGE_SENT, node="z", peer="b", payload="m")
        report = check_locality(check_graph, trace)
        assert not report.holds

    def test_explicit_faulty_set(self, check_graph):
        trace = base_trace(check_graph)
        report = check_locality(check_graph, trace, faulty=frozenset({"v1", "v2"}))
        assert report.holds

    def test_self_messages_ignored(self, check_graph):
        trace = base_trace(check_graph)
        trace.emit(3.0, EventKind.MESSAGE_SENT, node="z", peer="z", payload="m")
        assert check_locality(check_graph, trace).holds


class TestUniformBorderAgreement:
    def test_holds(self, check_graph):
        assert check_uniform_border_agreement(check_graph, base_trace(check_graph)).holds

    def test_violated_by_different_values(self, check_graph):
        trace = base_trace(check_graph, decide_nodes=("a", "b"))
        view = crashed_region(check_graph)
        trace.emit(9.0, EventKind.DECIDED, node="c", payload=view, decision="other-plan")
        assert not check_uniform_border_agreement(check_graph, trace).holds

    def test_violated_by_different_view_on_border(self, check_graph):
        trace = base_trace(check_graph, decide_nodes=("a", "b"))
        other = Region(frozenset({"v1"}))
        trace.emit(9.0, EventKind.DECIDED, node="c", payload=other, decision="plan")
        assert not check_uniform_border_agreement(check_graph, trace).holds


class TestBorderTermination:
    def test_holds_when_all_border_decides(self, check_graph):
        assert check_border_termination(check_graph, base_trace(check_graph)).holds

    def test_violated_when_correct_border_node_silent(self, check_graph):
        trace = base_trace(check_graph, decide_nodes=("a", "b"))
        report = check_border_termination(check_graph, trace)
        assert not report.holds
        assert "never decided" in report.violations[0]

    def test_crashed_border_node_excused(self, check_graph):
        trace = base_trace(check_graph, decide_nodes=("a", "b"))
        trace.emit(0.5, EventKind.NODE_CRASHED, node="c")
        assert check_border_termination(check_graph, trace).holds


class TestViewConvergence:
    def test_holds_for_equal_views(self, check_graph):
        assert check_view_convergence(base_trace(check_graph)).holds

    def test_holds_for_disjoint_views(self, check_graph):
        trace = base_trace(check_graph)
        trace.emit(1.5, EventKind.NODE_CRASHED, node="z")
        trace.emit(9.0, EventKind.DECIDED, node="b",
                   payload=Region(frozenset({"z"})), decision="other")
        assert check_view_convergence(trace).holds

    def test_violated_by_overlapping_views(self, check_graph):
        trace = base_trace(check_graph)
        overlapping = Region(frozenset({"v1"}))
        trace.emit(9.0, EventKind.DECIDED, node="a", payload=overlapping, decision="d")
        assert not check_view_convergence(trace).holds

    def test_crashed_deciders_are_exempt(self, check_graph):
        trace = base_trace(check_graph)
        overlapping = Region(frozenset({"v1"}))
        trace.emit(8.0, EventKind.DECIDED, node="b", payload=overlapping, decision="d")
        trace.emit(8.5, EventKind.NODE_CRASHED, node="b")
        assert check_view_convergence(trace).holds


class TestProgress:
    def test_holds(self, check_graph):
        assert check_progress(check_graph, base_trace(check_graph)).holds

    def test_violated_when_nobody_decides(self, check_graph):
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v1")
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v2")
        assert not check_progress(check_graph, trace).holds

    def test_no_faulty_nodes_trivially_holds(self, check_graph):
        assert check_progress(check_graph, TraceRecorder()).holds

    def test_cluster_with_no_correct_border_skipped(self):
        graph = KnowledgeGraph([("u", "v")])
        trace = TraceRecorder()
        trace.emit(1.0, EventKind.NODE_CRASHED, node="u")
        trace.emit(1.0, EventKind.NODE_CRASHED, node="v")
        assert check_progress(graph, trace).holds


class TestWholeSpecification:
    def test_check_all_holds(self, check_graph):
        report = check_all(check_graph, base_trace(check_graph))
        assert report.holds
        assert len(report.reports) == 7
        assert report.violations() == []
        assert "CD1" in report.summary()

    def test_check_all_without_liveness(self, check_graph):
        trace = base_trace(check_graph, decide_nodes=("a",))
        full = check_all(check_graph, trace)
        safety_only = check_all(check_graph, trace, include_liveness=False)
        assert not full.holds  # CD4 violated: b and c silent
        assert safety_only.holds
        assert len(safety_only.reports) == 5

    def test_assert_specification_raises(self, check_graph):
        trace = base_trace(check_graph)
        view = crashed_region(check_graph)
        trace.emit(9.0, EventKind.DECIDED, node="a", payload=view, decision="plan")
        with pytest.raises(AssertionError):
            assert_specification(check_graph, trace)

    def test_assert_specification_passes(self, check_graph):
        report = assert_specification(check_graph, base_trace(check_graph))
        assert report.holds
