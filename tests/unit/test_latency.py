"""Unit tests for the latency models and failure-detector delay policies."""

from __future__ import annotations

import random

import pytest

from repro.sim import (
    ConstantLatency,
    ExponentialLatency,
    JitteredFailureDetector,
    PerPairLatency,
    PerfectFailureDetector,
    ScriptedFailureDetector,
    UniformLatency,
)


class TestLatencyModels:
    def test_constant_latency(self):
        model = ConstantLatency(2.0)
        rng = random.Random(0)
        assert model.sample("a", "b", rng) == 2.0
        assert model.sample("b", "a", rng) == 2.0

    def test_constant_latency_must_be_positive(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)

    def test_uniform_latency_within_bounds(self):
        model = UniformLatency(0.5, 1.5)
        rng = random.Random(1)
        samples = [model.sample("a", "b", rng) for _ in range(200)]
        assert all(0.5 <= sample <= 1.5 for sample in samples)

    def test_uniform_latency_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ValueError):
            UniformLatency(0.0, 1.0)

    def test_uniform_latency_seeded_reproducible(self):
        model = UniformLatency(0.5, 1.5)
        first = [model.sample("a", "b", random.Random(42)) for _ in range(5)]
        second = [model.sample("a", "b", random.Random(42)) for _ in range(5)]
        assert first == second

    def test_exponential_latency_above_base(self):
        model = ExponentialLatency(base=0.2, mean=1.0)
        rng = random.Random(2)
        samples = [model.sample("a", "b", rng) for _ in range(200)]
        assert all(sample >= 0.2 for sample in samples)

    def test_exponential_latency_invalid(self):
        with pytest.raises(ValueError):
            ExponentialLatency(base=-1.0)
        with pytest.raises(ValueError):
            ExponentialLatency(mean=0.0)

    def test_per_pair_latency(self):
        model = PerPairLatency.from_dict({("a", "b"): 5.0}, default=1.0)
        rng = random.Random(0)
        assert model.sample("a", "b", rng) == 5.0
        assert model.sample("b", "a", rng) == 1.0
        assert model.sample("x", "y", rng) == 1.0


class TestFailureDetectorPolicies:
    def test_perfect_constant_delay(self):
        detector = PerfectFailureDetector(1.5)
        rng = random.Random(0)
        assert detector.delay("p", "q", rng) == 1.5

    def test_perfect_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PerfectFailureDetector(-1.0)

    def test_jittered_within_bounds(self):
        detector = JitteredFailureDetector(0.5, 2.0)
        rng = random.Random(3)
        samples = [detector.delay("p", "q", rng) for _ in range(100)]
        assert all(0.5 <= sample <= 2.0 for sample in samples)

    def test_jittered_invalid_bounds(self):
        with pytest.raises(ValueError):
            JitteredFailureDetector(2.0, 1.0)
        with pytest.raises(ValueError):
            JitteredFailureDetector(-0.5, 1.0)

    def test_scripted_delays(self):
        detector = ScriptedFailureDetector({("madrid", "paris"): 40.0}, default_delay=1.0)
        rng = random.Random(0)
        assert detector.delay("madrid", "paris", rng) == 40.0
        assert detector.delay("berlin", "paris", rng) == 1.0

    def test_scripted_set_delay(self):
        detector = ScriptedFailureDetector()
        detector.set_delay("p", "q", 7.0)
        assert detector.delay("p", "q", random.Random(0)) == 7.0

    def test_scripted_rejects_negative(self):
        with pytest.raises(ValueError):
            ScriptedFailureDetector({("p", "q"): -1.0})
        with pytest.raises(ValueError):
            ScriptedFailureDetector(default_delay=-1.0)
        detector = ScriptedFailureDetector()
        with pytest.raises(ValueError):
            detector.set_delay("p", "q", -2.0)
