"""The partitioned-run benchmark must not clobber its multi-core proof.

``BENCH_partition.json`` is only meaningful when it was measured with at
least as many CPUs as partitions; these tests pin the overwrite guard in
``benchmarks/bench_partitioned_run.py`` that keeps a single-CPU re-run
from silently replacing a multi-core measurement.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_PATH = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "bench_partitioned_run.py"
)


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location(
        "bench_partitioned_run", BENCH_PATH
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    try:
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def report(cpus, partitions):
    return {"config": {"cpus": cpus, "partitions": partitions}}


class TestShouldOverwrite:
    def test_no_existing_report_always_writes(self, bench):
        write, _ = bench.should_overwrite(None, report(1, 4))
        assert write

    def test_single_core_may_replace_single_core(self, bench):
        write, _ = bench.should_overwrite(report(1, 4), report(1, 4))
        assert write

    def test_multi_core_may_replace_anything(self, bench):
        assert bench.should_overwrite(report(1, 4), report(4, 4))[0]
        assert bench.should_overwrite(report(8, 4), report(4, 4))[0]

    def test_single_core_must_not_replace_multi_core(self, bench):
        write, reason = bench.should_overwrite(report(4, 4), report(1, 4))
        assert not write
        assert "multi-core" in reason

    def test_unreadable_existing_config_is_not_a_proof(self, bench):
        assert bench.should_overwrite({}, report(1, 4))[0]
        assert bench.should_overwrite({"config": {"cpus": None}}, report(1, 4))[0]

    def test_equal_cpus_and_partitions_counts_as_proof(self, bench):
        assert bench._is_multicore_proof(report(2, 2))
        assert not bench._is_multicore_proof(report(1, 2))
