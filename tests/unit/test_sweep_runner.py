"""Unit tests for the sharded sweep engine (repro.scale)."""

from __future__ import annotations

import os
import time

import pytest

from repro.scale import (
    ShardedSweepRunner,
    SweepOutcome,
    SweepTask,
    SweepTaskError,
    UnknownFamilyError,
    derive_seed,
    register_family,
    resolve_workers,
    run_task,
    unregister_family,
)


def _outcome(family: str, seed: int, **labels) -> SweepOutcome:
    return SweepOutcome(
        family=family,
        label=family,
        seed=seed,
        index=-1,
        digest=f"digest-{seed}",
        nodes=1,
        messages=seed,
        decisions=1,
        decided_views=1,
        quiescent=True,
        spec_holds=True,
        labels=dict(labels),
    )


# Top-level family functions: picklable under any multiprocessing start
# method, and inherited by forked workers after registration.
def _echo_family(seed: int, **params) -> SweepOutcome:
    return _outcome("echo", seed, **params)


def _slow_inverse_family(seed: int, delays=()) -> SweepOutcome:
    # Sleeps per-task so later-submitted tasks finish *first*: exercises
    # order-stable merging against completion order.
    time.sleep(delays[seed] if seed < len(delays) else 0.0)
    return _outcome("slow-inverse", seed)


def _failing_family(seed: int) -> SweepOutcome:
    raise ValueError(f"boom at seed {seed}")


def _dying_family(seed: int) -> SweepOutcome:
    os._exit(3)  # simulate a worker process dying outright


def _interrupt_family(seed: int) -> SweepOutcome:
    raise KeyboardInterrupt


@pytest.fixture(autouse=True)
def _temp_families():
    register_family("echo", _echo_family)
    register_family("slow-inverse", _slow_inverse_family)
    register_family("failing", _failing_family)
    register_family("dying", _dying_family)
    register_family("interrupting", _interrupt_family)
    yield
    for name in ("echo", "slow-inverse", "failing", "dying", "interrupting"):
        unregister_family(name)


class TestSeeding:
    def test_derive_seed_is_deterministic_and_spread(self):
        first = derive_seed(0, 1, "echo", {"a": 1})
        assert first == derive_seed(0, 1, "echo", {"a": 1})
        others = {
            derive_seed(0, 2, "echo", {"a": 1}),
            derive_seed(1, 1, "echo", {"a": 1}),
            derive_seed(0, 1, "other", {"a": 1}),
            derive_seed(0, 1, "echo", {"a": 2}),
        }
        assert first not in others and len(others) == 4

    def test_seed_for_honours_explicit_seed(self):
        runner = ShardedSweepRunner(workers=1, base_seed=7)
        assert runner.seed_for(SweepTask("echo", seed=42), index=3) == 42
        derived = runner.seed_for(SweepTask("echo"), index=3)
        assert derived == derive_seed(7, 3, "echo", {})

    def test_resolve_workers(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        assert resolve_workers(3) == 3
        with pytest.raises(ValueError):
            resolve_workers(-1)


class TestInlineFallback:
    def test_empty_task_list(self):
        report = ShardedSweepRunner(workers=4).run([])
        assert len(report) == 0
        assert report.all_hold and report.all_quiescent
        assert report.outcomes == ()
        assert report.digest() == report.digest()  # stable empty digest

    def test_single_worker_never_builds_a_pool(self, monkeypatch):
        def forbidden(self):
            raise AssertionError("workers=1 must not build a process pool")

        monkeypatch.setattr(ShardedSweepRunner, "_make_executor", forbidden)
        report = ShardedSweepRunner(workers=1).run(
            [SweepTask("echo", seed=s) for s in range(3)]
        )
        assert [o.seed for o in report.outcomes] == [0, 1, 2]

    def test_single_task_with_many_workers_runs_inline(self, monkeypatch):
        def forbidden(self):
            raise AssertionError("a one-task sweep must not build a pool")

        monkeypatch.setattr(ShardedSweepRunner, "_make_executor", forbidden)
        report = ShardedSweepRunner(workers=8).run([SweepTask("echo", seed=5)])
        assert len(report) == 1 and report.outcomes[0].seed == 5

    def test_inline_failure_wraps_task_context(self):
        runner = ShardedSweepRunner(workers=1)
        tasks = [SweepTask("echo", seed=0), SweepTask("failing", seed=9)]
        with pytest.raises(SweepTaskError) as info:
            runner.run(tasks)
        assert info.value.index == 1
        assert info.value.task.family == "failing"
        assert isinstance(info.value.__cause__, ValueError)

    def test_inline_keyboard_interrupt_propagates_unwrapped(self):
        with pytest.raises(KeyboardInterrupt):
            ShardedSweepRunner(workers=1).run([SweepTask("interrupting", seed=0)])

    def test_unknown_family_fails_fast(self):
        with pytest.raises(UnknownFamilyError):
            ShardedSweepRunner(workers=1).run([SweepTask("no-such-family")])
        # With a pool requested the check still happens before forking.
        with pytest.raises(UnknownFamilyError):
            ShardedSweepRunner(workers=4).run([SweepTask("no-such-family")])

    def test_run_task_unknown_family(self):
        with pytest.raises(UnknownFamilyError):
            run_task(SweepTask("definitely-not-registered"))


class TestPooledExecution:
    def test_outcomes_merge_in_submission_order(self):
        delays = (0.4, 0.0)  # task 0 finishes last
        tasks = [
            SweepTask("slow-inverse", seed=s, params={"delays": delays})
            for s in range(2)
        ]
        report = ShardedSweepRunner(workers=2).run(tasks)
        assert [o.seed for o in report.outcomes] == [0, 1]
        assert [o.index for o in report.outcomes] == [0, 1]

    def test_pool_and_inline_agree(self):
        tasks = [SweepTask("echo", params={"tag": "x"}) for _ in range(4)]
        inline = ShardedSweepRunner(workers=1, base_seed=3).run(tasks)
        pooled = ShardedSweepRunner(workers=2, base_seed=3).run(tasks)
        assert [o.seed for o in inline.outcomes] == [o.seed for o in pooled.outcomes]
        assert inline.digest() == pooled.digest()

    def test_worker_exception_propagates_with_task_context(self):
        tasks = [SweepTask("echo", seed=0), SweepTask("failing", seed=1)]
        with pytest.raises(SweepTaskError) as info:
            ShardedSweepRunner(workers=2).run(tasks)
        assert info.value.index == 1
        assert info.value.task.family == "failing"
        assert "boom" in info.value.reason

    def test_worker_process_death_is_reported(self):
        tasks = [SweepTask("dying", seed=0)] + [SweepTask("echo", seed=s) for s in (1, 2)]
        with pytest.raises(SweepTaskError) as info:
            ShardedSweepRunner(workers=2).run(tasks)
        assert "worker process died" in str(info.value)

    def test_keyboard_interrupt_cancels_and_abandons_pool(self, monkeypatch):
        shutdown_calls = []

        class FakeFuture:
            def __init__(self):
                self.cancelled_flag = False

            def cancel(self):
                self.cancelled_flag = True

        class FakeExecutor:
            def submit(self, fn, *args):
                return FakeFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                shutdown_calls.append({"wait": wait, "cancel_futures": cancel_futures})

        import repro.scale.sweep as sweep_module

        monkeypatch.setattr(
            ShardedSweepRunner, "_make_executor", lambda self: FakeExecutor()
        )

        def interrupted_wait(futures, return_when=None):
            raise KeyboardInterrupt

        monkeypatch.setattr(sweep_module, "wait", interrupted_wait)
        with pytest.raises(KeyboardInterrupt):
            ShardedSweepRunner(workers=2).run(
                [SweepTask("echo", seed=s) for s in range(3)]
            )
        assert shutdown_calls == [{"wait": False, "cancel_futures": True}]


class TestReport:
    def test_summary_and_rows(self):
        report = ShardedSweepRunner(workers=1).run(
            [SweepTask("echo", seed=s) for s in range(3)]
        )
        summary = report.summary()
        assert summary["runs"] == 3
        assert summary["all_hold"] is True
        assert summary["violating_indices"] == []
        rows = report.as_rows()
        assert [row["index"] for row in rows] == [0, 1, 2]

    def test_digest_is_order_sensitive(self):
        forward = ShardedSweepRunner(workers=1).run(
            [SweepTask("echo", seed=s) for s in (1, 2)]
        )
        backward = ShardedSweepRunner(workers=1).run(
            [SweepTask("echo", seed=s) for s in (2, 1)]
        )
        assert forward.digest() != backward.digest()
