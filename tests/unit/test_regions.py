"""Unit tests for regions, faulty domains and faulty clusters."""

from __future__ import annotations

import pytest

from repro.graph import (
    GraphError,
    KnowledgeGraph,
    Region,
    RegionError,
    are_adjacent,
    cluster_border,
    clustered,
    faulty_clusters,
    faulty_domains,
)


class TestRegion:
    def test_empty_region_rejected(self):
        with pytest.raises(RegionError):
            Region(frozenset())

    def test_of_validates_connectivity(self, line_graph):
        with pytest.raises(RegionError):
            Region.of(line_graph, ["a", "c"])

    def test_of_accepts_connected(self, line_graph):
        region = Region.of(line_graph, ["a", "b"])
        assert region.members == frozenset({"a", "b"})

    def test_of_rejects_empty(self, line_graph):
        with pytest.raises(RegionError):
            Region.of(line_graph, [])

    def test_set_protocol(self, line_graph):
        region = Region.of(line_graph, ["a", "b", "c"])
        assert "a" in region
        assert "e" not in region
        assert len(region) == 3
        assert set(iter(region)) == {"a", "b", "c"}

    def test_overlaps(self, line_graph):
        first = Region.of(line_graph, ["a", "b"])
        second = Region.of(line_graph, ["b", "c"])
        third = Region.of(line_graph, ["d", "e"])
        assert first.overlaps(second)
        assert not first.overlaps(third)

    def test_issubset_and_union(self, line_graph):
        small = Region.of(line_graph, ["b"])
        big = Region.of(line_graph, ["a", "b", "c"])
        assert small.issubset(big)
        assert not big.issubset(small)
        assert small.union(big) == frozenset({"a", "b", "c"})

    def test_border(self, line_graph):
        region = Region.of(line_graph, ["b", "c"])
        assert region.border(line_graph) == frozenset({"a", "d"})

    def test_closed_neighbourhood(self, line_graph):
        region = Region.of(line_graph, ["c"])
        assert region.closed_neighbourhood(line_graph) == frozenset({"b", "c", "d"})

    def test_is_crashed_region(self, line_graph):
        region = Region.of(line_graph, ["b", "c"])
        assert region.is_crashed_region(line_graph, ["b", "c", "e"])
        assert not region.is_crashed_region(line_graph, ["b"])

    def test_sorted_members_and_repr(self, line_graph):
        region = Region.of(line_graph, ["c", "b"])
        assert region.sorted_members() == ("b", "c")
        assert "Region" in repr(region)

    def test_hashable_and_equal(self, line_graph):
        first = Region.of(line_graph, ["a", "b"])
        second = Region(frozenset({"a", "b"}))
        assert first == second
        assert hash(first) == hash(second)
        assert len({first, second}) == 1


@pytest.fixture
def cluster_graph() -> KnowledgeGraph:
    """Two faulty domains sharing a border node, plus one isolated domain.

    f1a-f1b is domain A, f2a is domain B; they share border node ``x``.
    g1 is a separate domain far away, bordered only by ``y`` and ``z``.
    """
    return KnowledgeGraph(
        [
            ("f1a", "f1b"),
            ("f1a", "x"),
            ("x", "f2a"),
            ("f1b", "p"),
            ("f2a", "q"),
            ("p", "q"),
            ("q", "y"),
            ("y", "g1"),
            ("g1", "z"),
            ("z", "p"),
        ]
    )


class TestFaultyDomains:
    def test_domains_are_components(self, cluster_graph):
        domains = faulty_domains(cluster_graph, ["f1a", "f1b", "f2a", "g1"])
        members = {domain.members for domain in domains}
        assert members == {
            frozenset({"f1a", "f1b"}),
            frozenset({"f2a"}),
            frozenset({"g1"}),
        }

    def test_unknown_faulty_node_raises(self, cluster_graph):
        with pytest.raises(GraphError):
            faulty_domains(cluster_graph, ["nope"])

    def test_no_faulty_nodes(self, cluster_graph):
        assert faulty_domains(cluster_graph, []) == frozenset()

    def test_adjacency_via_shared_border(self, cluster_graph):
        domain_a = Region(frozenset({"f1a", "f1b"}))
        domain_b = Region(frozenset({"f2a"}))
        domain_c = Region(frozenset({"g1"}))
        assert are_adjacent(cluster_graph, domain_a, domain_b)
        assert not are_adjacent(cluster_graph, domain_a, domain_c)

    def test_self_adjacency(self, cluster_graph):
        domain = Region(frozenset({"g1"}))
        assert are_adjacent(cluster_graph, domain, domain)


class TestFaultyClusters:
    def test_clusters_partition_domains(self, cluster_graph):
        clusters = faulty_clusters(cluster_graph, ["f1a", "f1b", "f2a", "g1"])
        assert len(clusters) == 2
        sizes = sorted(len(cluster) for cluster in clusters)
        assert sizes == [1, 2]

    def test_clustered_predicate(self, cluster_graph):
        faulty = ["f1a", "f1b", "f2a", "g1"]
        domain_a = Region(frozenset({"f1a", "f1b"}))
        domain_b = Region(frozenset({"f2a"}))
        domain_c = Region(frozenset({"g1"}))
        assert clustered(cluster_graph, faulty, domain_a, domain_b)
        assert not clustered(cluster_graph, faulty, domain_a, domain_c)

    def test_transitive_clustering(self):
        """A ‖ B and B ‖ C puts A and C in the same cluster even if A ∦ C."""
        graph = KnowledgeGraph(
            [
                ("a1", "x1"),
                ("x1", "b1"),
                ("b1", "x2"),
                ("x2", "c1"),
                ("x1", "x2"),
                ("a1", "pa"),
                ("c1", "pc"),
                ("pa", "pc"),
            ]
        )
        faulty = ["a1", "b1", "c1"]
        clusters = faulty_clusters(graph, faulty)
        assert len(clusters) == 1
        domain_a = Region(frozenset({"a1"}))
        domain_c = Region(frozenset({"c1"}))
        assert not are_adjacent(graph, domain_a, domain_c)
        assert clustered(graph, faulty, domain_a, domain_c)

    def test_cluster_border_union(self, cluster_graph):
        clusters = faulty_clusters(cluster_graph, ["f1a", "f1b", "f2a"])
        assert len(clusters) == 1
        border = cluster_border(cluster_graph, next(iter(clusters)))
        assert border == frozenset({"x", "p", "q"})

    def test_fig2_style_chain_is_one_cluster(self):
        from repro.experiments.topologies import fig2_topology

        layout = fig2_topology()
        clusters = faulty_clusters(layout.graph, layout.all_faulty())
        assert len(clusters) == 1
        assert len(next(iter(clusters))) == 4
