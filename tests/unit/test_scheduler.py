"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim import EventScheduler, SchedulerError


class TestScheduling:
    def test_starts_at_time_zero(self):
        scheduler = EventScheduler()
        assert scheduler.now == 0.0
        assert scheduler.is_idle()

    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(3.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.schedule(2.0, lambda: order.append("middle"))
        scheduler.run()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        for index in range(5):
            scheduler.schedule(1.0, lambda index=index: order.append(index))
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]
        assert scheduler.now == 2.5

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(4.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SchedulerError):
            scheduler.schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule(1.0, lambda: order.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert order == ["first", "second"]
        assert scheduler.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        scheduler = EventScheduler()
        seen = []
        handle = scheduler.schedule(1.0, lambda: seen.append("ran"))
        handle.cancel()
        scheduler.run()
        assert seen == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        handle = scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        assert scheduler.pending_events == 1

    def test_handle_exposes_time(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(3.5, lambda: None)
        assert handle.time == 3.5


class TestRunBounds:
    def test_run_until(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, lambda: seen.append(1))
        scheduler.schedule(5.0, lambda: seen.append(5))
        stopped_at = scheduler.run(until=2.0)
        assert seen == [1]
        assert stopped_at == 2.0
        assert not scheduler.is_idle()

    def test_run_max_events(self):
        scheduler = EventScheduler()
        seen = []
        for index in range(10):
            scheduler.schedule(float(index + 1), lambda index=index: seen.append(index))
        scheduler.run(max_events=3)
        assert seen == [0, 1, 2]
        assert scheduler.processed_events == 3

    def test_step_returns_false_when_empty(self):
        scheduler = EventScheduler()
        assert scheduler.step() is False

    def test_run_returns_final_time(self):
        scheduler = EventScheduler()
        scheduler.schedule(7.0, lambda: None)
        assert scheduler.run() == 7.0
