"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.sim import EventScheduler, SchedulerError


class TestScheduling:
    def test_starts_at_time_zero(self):
        scheduler = EventScheduler()
        assert scheduler.now == 0.0
        assert scheduler.is_idle()

    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(3.0, lambda: order.append("late"))
        scheduler.schedule(1.0, lambda: order.append("early"))
        scheduler.schedule(2.0, lambda: order.append("middle"))
        scheduler.run()
        assert order == ["early", "middle", "late"]

    def test_ties_run_in_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        for index in range(5):
            scheduler.schedule(1.0, lambda index=index: order.append(index))
        scheduler.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(2.5, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [2.5]
        assert scheduler.now == 2.5

    def test_schedule_at_absolute_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule_at(4.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [4.0]

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(SchedulerError):
            scheduler.schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, lambda: None)
        scheduler.run()
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        scheduler = EventScheduler()
        order = []

        def first():
            order.append("first")
            scheduler.schedule(1.0, lambda: order.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert order == ["first", "second"]
        assert scheduler.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        scheduler = EventScheduler()
        seen = []
        handle = scheduler.schedule(1.0, lambda: seen.append("ran"))
        handle.cancel()
        scheduler.run()
        assert seen == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        handle = scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        assert scheduler.pending_events == 1

    def test_handle_exposes_time(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(3.5, lambda: None)
        assert handle.time == 3.5


class TestCompaction:
    """Lazy-deletion compaction keeps the heap bounded by live events."""

    def test_heap_stays_bounded_under_heavy_cancellation(self):
        # High-churn workloads schedule and cancel constantly; without
        # compaction every cancelled entry would sit in the heap until
        # its timestamp drains.  The heap must stay O(live).
        scheduler = EventScheduler()
        live = [scheduler.schedule(1000.0 + i, lambda: None) for i in range(10)]
        for _ in range(20):
            batch = [scheduler.schedule(500.0, lambda: None) for _ in range(100)]
            for handle in batch:
                handle.cancel()
        assert scheduler.pending_events == len(live)
        # Bounded: strictly fewer raw entries than the 2000+ cancellations.
        assert scheduler.heap_size <= 2 * len(live) + 64

    def test_compaction_preserves_event_order(self):
        scheduler = EventScheduler()
        order = []
        handles = []
        for index in range(200):
            handles.append(
                scheduler.schedule(float(index % 7) + 1.0, lambda i=index: order.append(i))
            )
        # Cancel every other event to force a compaction.
        cancelled = {index for index in range(0, 200, 2)}
        for index in sorted(cancelled):
            handles[index].cancel()
        scheduler.run()
        survivors = [i for i in range(200) if i not in cancelled]
        expected = sorted(survivors, key=lambda i: (float(i % 7) + 1.0, i))
        assert order == expected

    def test_cancellation_during_run_is_safe(self):
        # A callback cancelling enough entries to trigger compaction must
        # not desynchronise the running dispatch loop.
        scheduler = EventScheduler()
        seen = []
        victims = [scheduler.schedule(5.0, lambda i=i: seen.append(i)) for i in range(100)]

        def cancel_everything():
            seen.append("canceller")
            for victim in victims:
                victim.cancel()

        scheduler.schedule(1.0, cancel_everything)
        scheduler.schedule(9.0, lambda: seen.append("end"))
        scheduler.run()
        assert seen == ["canceller", "end"]
        assert scheduler.is_idle()

    def test_pending_events_constant_time_bookkeeping(self):
        scheduler = EventScheduler()
        handles = [scheduler.schedule(1.0, lambda: None) for _ in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        for handle in handles[:4]:
            handle.cancel()  # idempotent: no double counting
        assert scheduler.pending_events == 6

    def test_cancel_after_execution_is_a_noop(self):
        # Cancelling a handle whose callback already ran must not corrupt
        # the lazy-deletion counter (the entry is no longer in the heap).
        scheduler = EventScheduler()
        fired = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.run(until=1.5)
        fired.cancel()
        assert scheduler.pending_events == 1
        assert not scheduler.is_idle()
        scheduler.run()
        assert scheduler.processed_events == 2


class TestBatchedDispatchEquivalence:
    """Batched and unbatched dispatch must produce identical executions."""

    @staticmethod
    def _workload(scheduler, order):
        def spawner(tag):
            order.append(tag)
            if tag < 3:
                # Same-timestamp follow-up: joins the current batch.
                scheduler.schedule(0.0, lambda: spawner(tag + 10))
                scheduler.schedule(1.0, lambda: spawner(tag + 1))

        for index in range(3):
            scheduler.schedule(1.0, lambda i=index: spawner(i))
        handle = scheduler.schedule(1.0, lambda: order.append("cancelled"))
        handle.cancel()
        scheduler.schedule(2.5, lambda: order.append("tail"))

    def test_same_order_and_counters(self):
        runs = {}
        for batched in (True, False):
            scheduler = EventScheduler(batch_dispatch=batched)
            order = []
            self._workload(scheduler, order)
            end = scheduler.run()
            runs[batched] = (order, end, scheduler.processed_events)
        assert runs[True] == runs[False]

    def test_same_behaviour_with_until_and_max_events(self):
        for until, max_events in ((1.0, None), (None, 4), (2.0, 6), (0.5, None)):
            results = {}
            for batched in (True, False):
                scheduler = EventScheduler(batch_dispatch=batched)
                order = []
                self._workload(scheduler, order)
                stopped = scheduler.run(until=until, max_events=max_events)
                results[batched] = (order, stopped, scheduler.processed_events, scheduler.now)
            assert results[True] == results[False], (until, max_events)


class TestRunBounds:
    def test_run_until(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(1.0, lambda: seen.append(1))
        scheduler.schedule(5.0, lambda: seen.append(5))
        stopped_at = scheduler.run(until=2.0)
        assert seen == [1]
        assert stopped_at == 2.0
        assert not scheduler.is_idle()

    def test_run_max_events(self):
        scheduler = EventScheduler()
        seen = []
        for index in range(10):
            scheduler.schedule(float(index + 1), lambda index=index: seen.append(index))
        scheduler.run(max_events=3)
        assert seen == [0, 1, 2]
        assert scheduler.processed_events == 3

    def test_step_returns_false_when_empty(self):
        scheduler = EventScheduler()
        assert scheduler.step() is False

    def test_run_returns_final_time(self):
        scheduler = EventScheduler()
        scheduler.schedule(7.0, lambda: None)
        assert scheduler.run() == 7.0
