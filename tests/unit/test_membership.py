"""Unit tests for membership schedules, builders and attachment policies."""

from __future__ import annotations

import random

import pytest

from repro.churn import (
    FreshJoinByLocality,
    MembershipError,
    MembershipEvent,
    MembershipEventKind,
    MembershipSchedule,
    RejoinOldEdges,
    RejoinViaRepairPlan,
    crash_recover_recrash,
    flash_crowd_joins,
    join,
    leave,
    recover,
    recovery_for,
    steady_state_churn,
)
from repro.churn.attachment import AttachmentError
from repro.failures import CrashSchedule, ScheduleError, region_crash
from repro.graph import KnowledgeGraph
from repro.graph.generators import grid, torus


class TestMembershipEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(MembershipError):
            MembershipEvent(-1.0, MembershipEventKind.RECOVER, "a")

    def test_join_needs_attachment(self):
        with pytest.raises(MembershipError):
            join("x", 1.0, attachment=None)

    def test_leave_takes_no_attachment(self):
        with pytest.raises(MembershipError):
            MembershipEvent(1.0, MembershipEventKind.LEAVE, "a", attachment=["b"])

    def test_constructors(self):
        assert join("x", 1.0, ["a"]).kind is MembershipEventKind.JOIN
        assert recover("a", 2.0).kind is MembershipEventKind.RECOVER
        assert leave("a", 3.0).kind is MembershipEventKind.LEAVE


class TestMembershipSchedule:
    def test_basic_accessors(self):
        schedule = MembershipSchedule((recover("a", 5.0), leave("b", 2.0)))
        assert schedule.nodes == {"a", "b"}
        assert schedule.last_time == 5.0
        assert len(schedule) == 2
        assert len(schedule.of_kind(MembershipEventKind.RECOVER)) == 1

    def test_shifted(self):
        schedule = MembershipSchedule((recover("a", 5.0),)).shifted(2.0)
        assert schedule.events[0].time == 7.0
        with pytest.raises(MembershipError):
            schedule.shifted(-1.0)

    def test_merged_keeps_time_order(self):
        first = MembershipSchedule((recover("a", 5.0),))
        second = MembershipSchedule((leave("b", 2.0),))
        merged = first.merged(second)
        assert [event.node for event in merged] == ["b", "a"]

    def test_joining_nodes(self):
        schedule = MembershipSchedule((join("x", 1.0, ["a"]), recover("a", 2.0)))
        assert schedule.joining_nodes == {"x"}


class TestValidation:
    @pytest.fixture
    def line(self) -> KnowledgeGraph:
        return KnowledgeGraph([("a", "b"), ("b", "c"), ("c", "d")])

    def test_recover_needs_prior_crash(self, line):
        schedule = MembershipSchedule((recover("a", 5.0),))
        with pytest.raises(MembershipError):
            schedule.validate(line)

    def test_recover_after_crash_ok(self, line):
        crashes = CrashSchedule((("a", 1.0),))
        MembershipSchedule((recover("a", 5.0),)).validate(line, crashes)

    def test_recrash_needs_recovery(self, line):
        crashes = CrashSchedule((("a", 1.0), ("a", 10.0)), allow_recrash=True)
        with pytest.raises(MembershipError):
            MembershipSchedule().validate(line, crashes)
        # With a recovery in between the same schedule is fine.
        MembershipSchedule((recover("a", 5.0),)).validate(line, crashes)

    def test_join_of_existing_node_rejected(self, line):
        schedule = MembershipSchedule((join("a", 1.0, ["b"]),))
        with pytest.raises(MembershipError):
            schedule.validate(line)

    def test_leave_of_crashed_node_rejected(self, line):
        crashes = CrashSchedule((("a", 1.0),))
        schedule = MembershipSchedule((leave("a", 5.0),))
        with pytest.raises(MembershipError):
            schedule.validate(line, crashes)

    def test_crash_of_later_join_ok(self, line):
        crashes = CrashSchedule((("x", 5.0),))
        schedule = MembershipSchedule((join("x", 1.0, ["a"]),))
        schedule.validate(line, crashes)

    def test_crash_before_join_rejected(self, line):
        crashes = CrashSchedule((("x", 0.5),))
        schedule = MembershipSchedule((join("x", 1.0, ["a"]),))
        with pytest.raises(MembershipError):
            schedule.validate(line, crashes)

    def test_same_timestamp_ties_resolve_crash_first(self, line):
        # One canonical timeline is shared by validate() and both
        # runtimes: a crash and a recovery at the same instant order
        # crash-first everywhere, so whatever validate() accepts, the
        # simulator can actually execute.
        crashes = CrashSchedule((("a", 5.0),))
        schedule = MembershipSchedule((recover("a", 5.0),))
        schedule.validate(line, crashes)
        timeline = schedule.timeline(crashes)
        assert [(kind, node) for _, _, kind, node, _ in timeline] == [
            ("crash", "a"),
            ("recover", "a"),
        ]

    def test_timeline_orders_by_time_then_repr(self, line):
        crashes = CrashSchedule((("b", 2.0),))
        schedule = MembershipSchedule((leave("c", 1.0), recover("b", 4.0)))
        kinds = [kind for _, _, kind, _, _ in schedule.timeline(crashes)]
        assert kinds == ["leave", "crash", "recover"]


class TestCrashScheduleRecrash:
    def test_duplicate_rejected_by_default(self):
        with pytest.raises(ScheduleError):
            CrashSchedule((("a", 1.0), ("a", 2.0)))

    def test_allow_recrash_flag(self):
        schedule = CrashSchedule((("a", 1.0), ("a", 2.0)), allow_recrash=True)
        assert len(schedule) == 2
        assert schedule.shifted(1.0).allow_recrash
        other = CrashSchedule((("b", 1.0),))
        assert schedule.merged(other).allow_recrash


class TestBuilders:
    def test_recovery_for(self):
        graph = grid(4, 4)
        crashes = region_crash(graph, [(1, 1), (1, 2)], at=2.0)
        membership = recovery_for(crashes, downtime=10.0)
        assert membership.nodes == crashes.nodes
        assert all(event.time == 12.0 for event in membership)
        membership.validate(graph, crashes)

    def test_crash_recover_recrash(self):
        graph = grid(4, 4)
        crashes, membership = crash_recover_recrash(
            graph, [(1, 1), (1, 2)], crash_at=1.0, recover_at=5.0, recrash_at=9.0
        )
        assert crashes.allow_recrash
        assert len(crashes) == 4
        assert len(membership) == 2
        membership.validate(graph, crashes)

    def test_crash_recover_recrash_ordering_enforced(self):
        graph = grid(4, 4)
        with pytest.raises(MembershipError):
            crash_recover_recrash(
                graph, [(1, 1)], crash_at=5.0, recover_at=1.0, recrash_at=9.0
            )

    def test_steady_state_churn_is_deterministic_and_valid(self):
        graph = torus(8, 8)
        first = steady_state_churn(graph, churn_rate=0.05, duration=50.0, seed=3)
        second = steady_state_churn(graph, churn_rate=0.05, duration=50.0, seed=3)
        assert first[0].crashes == second[0].crashes
        assert first[1].events == second[1].events
        first[1].validate(graph, first[0])

    def test_steady_state_churn_concurrent_victims_not_adjacent(self):
        # Cycles overlapping in time must use disjoint, non-adjacent
        # regions; cycles far apart in time may reuse nodes freely.
        graph = torus(8, 8)
        downtime, margin = 15.0, 15.0
        crashes, _ = steady_state_churn(
            graph,
            churn_rate=0.1,
            duration=50.0,
            seed=1,
            downtime=downtime,
            settle_margin=margin,
        )
        cycles: dict[float, set] = {}
        for node, time in crashes.crashes:
            cycles.setdefault(time, set()).add(node)
        items = sorted(cycles.items())
        for i, (t1, r1) in enumerate(items):
            for t2, r2 in items[i + 1 :]:
                if t2 - t1 >= downtime + margin:
                    continue
                assert not (r1 & r2)
                for u in r1:
                    for v in r2:
                        assert not graph.has_edge(u, v)

    def test_steady_state_churn_rate_scales_cycle_count(self):
        graph = torus(8, 8)
        low, _ = steady_state_churn(graph, churn_rate=0.005, duration=100.0, seed=2)
        high, _ = steady_state_churn(graph, churn_rate=0.05, duration=100.0, seed=2)
        assert len(high) > len(low)

    def test_flash_crowd_ids_and_validation(self):
        graph = grid(4, 4)
        membership = flash_crowd_joins(graph, count=3, at=1.0, seed=0)
        assert len(membership) == 3
        assert membership.joining_nodes == {
            "newcomer-0",
            "newcomer-1",
            "newcomer-2",
        }
        membership.validate(graph)


class TestAttachmentPolicies:
    @pytest.fixture
    def ring5(self) -> KnowledgeGraph:
        return KnowledgeGraph(
            [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")]
        )

    def test_rejoin_old_edges(self, ring5):
        policy = RejoinOldEdges()
        neighbours = policy.neighbours_for(
            "b",
            current=ring5,
            base=ring5,
            crashed=frozenset({"b"}),
            rng=random.Random(0),
        )
        assert neighbours == {"a", "c"}

    def test_rejoin_via_repair_plan_uses_live_border(self, ring5):
        # b and c are down; the live border of that region is {a, d}.
        policy = RejoinViaRepairPlan()
        neighbours = policy.neighbours_for(
            "b",
            current=ring5,
            base=ring5,
            crashed=frozenset({"b", "c"}),
            rng=random.Random(0),
        )
        assert neighbours == {"a", "d"}

    def test_fresh_join_by_locality_avoids_crashed(self, ring5):
        policy = FreshJoinByLocality(fanout=2, anchor="a")
        neighbours = policy.neighbours_for(
            "newcomer",
            current=ring5,
            base=ring5,
            crashed=frozenset({"b"}),
            rng=random.Random(0),
        )
        assert len(neighbours) == 2
        assert "b" not in neighbours

    def test_fresh_join_needs_live_nodes(self, ring5):
        policy = FreshJoinByLocality(fanout=2)
        with pytest.raises(AttachmentError):
            policy.neighbours_for(
                "newcomer",
                current=ring5,
                base=ring5,
                crashed=frozenset(ring5.nodes),
                rng=random.Random(0),
            )

    def test_fanout_validation(self):
        with pytest.raises(AttachmentError):
            FreshJoinByLocality(fanout=0)
