"""Unit tests for crash schedules and fault injectors."""

from __future__ import annotations

import pytest

from repro.failures import (
    CrashSchedule,
    ScheduleError,
    cascade_crash,
    growing_region_crash,
    multi_region_crash,
    random_connected_region,
    random_crashes,
    region_crash,
)
from repro.graph.generators import grid, torus


@pytest.fixture
def schedule_graph():
    return grid(5, 5)


class TestCrashSchedule:
    def test_basic_fields(self):
        schedule = CrashSchedule((("a", 1.0), ("b", 2.0)))
        assert schedule.nodes == frozenset({"a", "b"})
        assert schedule.last_time == 2.0
        assert len(schedule) == 2
        assert list(schedule) == [("a", 1.0), ("b", 2.0)]

    def test_empty_schedule(self):
        schedule = CrashSchedule()
        assert schedule.nodes == frozenset()
        assert schedule.last_time == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(ScheduleError):
            CrashSchedule((("a", -1.0),))

    def test_duplicate_node_rejected(self):
        with pytest.raises(ScheduleError):
            CrashSchedule((("a", 1.0), ("a", 2.0)))

    def test_shifted(self):
        schedule = CrashSchedule((("a", 1.0),)).shifted(2.5)
        assert schedule.crashes == (("a", 3.5),)
        with pytest.raises(ScheduleError):
            schedule.shifted(-1.0)

    def test_merged_disjoint(self):
        merged = CrashSchedule((("a", 1.0),)).merged(CrashSchedule((("b", 2.0),)))
        assert merged.nodes == frozenset({"a", "b"})

    def test_merged_overlapping_rejected(self):
        with pytest.raises(ScheduleError):
            CrashSchedule((("a", 1.0),)).merged(CrashSchedule((("a", 2.0),)))

    def test_validate_against_graph(self, schedule_graph):
        good = CrashSchedule((((1, 1), 1.0),))
        good.validate(schedule_graph)
        bad = CrashSchedule((("nope", 1.0),))
        with pytest.raises(ScheduleError):
            bad.validate(schedule_graph)


class TestRegionCrash:
    def test_simultaneous(self, schedule_graph):
        schedule = region_crash(schedule_graph, [(1, 1), (1, 2)], at=3.0)
        assert all(time == 3.0 for _, time in schedule)

    def test_spread_spaces_crashes(self, schedule_graph):
        schedule = region_crash(schedule_graph, [(1, 1), (1, 2), (1, 3)], at=1.0, spread=4.0)
        times = sorted(time for _, time in schedule)
        assert times == [1.0, 3.0, 5.0]

    def test_empty_region_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            region_crash(schedule_graph, [])

    def test_disconnected_region_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            region_crash(schedule_graph, [(0, 0), (4, 4)])

    def test_negative_spread_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            region_crash(schedule_graph, [(1, 1)], spread=-1.0)

    def test_single_node_region(self, schedule_graph):
        schedule = region_crash(schedule_graph, [(2, 2)], at=1.0, spread=5.0)
        assert schedule.crashes == (((2, 2), 1.0),)


class TestGrowingRegionCrash:
    def test_growth_after_initial(self, schedule_graph):
        schedule = growing_region_crash(
            schedule_graph,
            [(1, 1), (1, 2)],
            growth_members=[(2, 1), (3, 1)],
            initial_at=1.0,
            growth_at=10.0,
            growth_spacing=2.0,
        )
        times = dict(schedule.crashes)
        assert times[(1, 1)] == 1.0
        assert times[(2, 1)] == 10.0
        assert times[(3, 1)] == 12.0

    def test_growth_must_be_adjacent(self, schedule_graph):
        with pytest.raises(ScheduleError):
            growing_region_crash(
                schedule_graph, [(1, 1)], growth_members=[(4, 4)]
            )

    def test_growth_node_in_initial_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            growing_region_crash(
                schedule_graph, [(1, 1), (1, 2)], growth_members=[(1, 2)]
            )

    def test_unknown_growth_node_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            growing_region_crash(
                schedule_graph, [(1, 1)], growth_members=["nope"]
            )

    def test_empty_growth_is_plain_region_crash(self, schedule_graph):
        schedule = growing_region_crash(schedule_graph, [(1, 1)], growth_members=[])
        assert schedule.nodes == frozenset({(1, 1)})


class TestMultiRegionCrash:
    def test_disjoint_regions(self, schedule_graph):
        schedule = multi_region_crash(
            schedule_graph, [[(0, 0), (0, 1)], [(4, 4), (4, 3)]], at=1.0, stagger=5.0
        )
        times = dict(schedule.crashes)
        assert times[(0, 0)] == 1.0
        assert times[(4, 4)] == 6.0

    def test_overlapping_regions_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            multi_region_crash(schedule_graph, [[(0, 0)], [(0, 0), (0, 1)]])


class TestRandomHelpers:
    def test_random_connected_region_size_and_connectivity(self, schedule_graph):
        region = random_connected_region(schedule_graph, 6, seed=3)
        assert len(region) == 6
        assert schedule_graph.is_connected_subset(region.members)

    def test_random_connected_region_deterministic(self, schedule_graph):
        assert (
            random_connected_region(schedule_graph, 5, seed=9).members
            == random_connected_region(schedule_graph, 5, seed=9).members
        )

    def test_random_connected_region_respects_forbidden(self, schedule_graph):
        forbidden = {(x, y) for x in range(5) for y in range(5) if x < 4}
        region = random_connected_region(schedule_graph, 2, seed=0, forbidden=forbidden)
        assert region.members.isdisjoint(forbidden)

    def test_random_connected_region_too_large(self):
        small = grid(2, 2)
        with pytest.raises(ScheduleError):
            random_connected_region(small, 10, seed=0)

    def test_random_connected_region_invalid_size(self, schedule_graph):
        with pytest.raises(ScheduleError):
            random_connected_region(schedule_graph, 0)

    def test_random_crashes_count_and_determinism(self, schedule_graph):
        first = random_crashes(schedule_graph, 4, seed=5)
        second = random_crashes(schedule_graph, 4, seed=5)
        assert len(first) == 4
        assert first.crashes == second.crashes

    def test_random_crashes_keep_connected_survivors(self):
        graph = torus(5, 5)
        schedule = random_crashes(graph, 5, seed=2, keep_connected_survivors=True)
        survivors = graph.nodes - schedule.nodes
        assert graph.is_connected_subset(survivors)

    def test_random_crashes_too_many(self):
        small = grid(2, 2)
        with pytest.raises(ScheduleError):
            random_crashes(small, 10, seed=0)

    def test_random_crashes_negative_rejected(self, schedule_graph):
        with pytest.raises(ScheduleError):
            random_crashes(schedule_graph, -1)


class TestCascadeCrash:
    def test_cascade_grows_connected(self, schedule_graph):
        schedule = cascade_crash(schedule_graph, (2, 2), 6, start=1.0, spacing=1.0)
        assert len(schedule) == 6
        assert schedule_graph.is_connected_subset(schedule.nodes)
        times = [time for _, time in schedule]
        assert times == sorted(times)

    def test_cascade_starts_at_seed(self, schedule_graph):
        schedule = cascade_crash(schedule_graph, (2, 2), 3)
        assert schedule.crashes[0][0] == (2, 2)

    def test_cascade_too_large(self):
        small = grid(2, 2)
        with pytest.raises(ScheduleError):
            cascade_crash(small, (0, 0), 10)

    def test_cascade_unknown_seed(self, schedule_graph):
        from repro.graph import GraphError

        with pytest.raises(GraphError):
            cascade_crash(schedule_graph, "nope", 2)

    def test_cascade_invalid_size(self, schedule_graph):
        with pytest.raises(ScheduleError):
            cascade_crash(schedule_graph, (0, 0), 0)
