"""Test suite for the cliff-edge consensus reproduction.

The suite is laid out as a package so the property-based modules can share
strategies via relative imports (``from .test_graph_invariants import ...``)
regardless of how pytest is invoked.
"""
