"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import KnowledgeGraph, Region
from repro.graph.generators import grid, torus
from repro.failures import region_crash


@pytest.fixture
def small_grid() -> KnowledgeGraph:
    """A 6x6 grid (36 nodes) used by many scenario tests."""
    return grid(6, 6)


@pytest.fixture
def small_torus() -> KnowledgeGraph:
    """An 8x8 torus: every node has degree 4."""
    return torus(8, 8)


@pytest.fixture
def line_graph() -> KnowledgeGraph:
    """a - b - c - d - e path graph with string node ids."""
    return KnowledgeGraph([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])


@pytest.fixture
def diamond_graph() -> KnowledgeGraph:
    """A small graph with a central crashed candidate and four neighbours.

        n1 - c1 - n2
         |    |    |
        n3 - c2 - n4
    """
    return KnowledgeGraph(
        [
            ("n1", "c1"),
            ("c1", "n2"),
            ("n1", "n3"),
            ("c1", "c2"),
            ("n2", "n4"),
            ("n3", "c2"),
            ("c2", "n4"),
        ]
    )


@pytest.fixture
def grid_block_schedule(small_grid):
    """The quickstart schedule: a 2x2 block crashes in the 6x6 grid."""
    block = [(2, 2), (2, 3), (3, 2), (3, 3)]
    return region_crash(small_grid, block, at=1.0), frozenset(block)


@pytest.fixture
def block_region(small_grid) -> Region:
    """The 2x2 block of the quickstart as a Region."""
    return Region.of(small_grid, [(2, 2), (2, 3), (3, 2), (3, 3)])
