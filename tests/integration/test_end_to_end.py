"""End-to-end protocol runs on assorted topologies, checked against CD1–CD7."""

from __future__ import annotations

import pytest

from repro import (
    CliffEdgeNode,
    Region,
    cascade_crash,
    multi_region_crash,
    region_crash,
    run_cliff_edge,
)
from repro.graph.generators import (
    clustered_communities,
    grid,
    random_geometric,
    ring,
    torus,
    watts_strogatz,
)
from repro.sim import JitteredFailureDetector, UniformLatency
from repro.trace import communicating_nodes


class TestGridBlockScenario:
    @pytest.fixture(scope="class")
    def result(self):
        graph = grid(6, 6)
        block = [(2, 2), (2, 3), (3, 2), (3, 3)]
        return run_cliff_edge(graph, region_crash(graph, block, at=1.0), check=True)

    def test_specification_holds(self, result):
        assert result.specification.holds, result.specification.summary()

    def test_single_view_decided(self, result):
        assert result.decided_views == {
            Region(frozenset({(2, 2), (2, 3), (3, 2), (3, 3)}))
        }

    def test_all_border_nodes_decide(self, result):
        border = result.graph.border({(2, 2), (2, 3), (3, 2), (3, 3)})
        assert result.deciding_nodes == border

    def test_same_decision_value_everywhere(self, result):
        values = {repr(decision.value) for decision in result.decisions}
        assert len(values) == 1

    def test_communication_confined_to_region_and_border(self, result):
        """CD3: traffic stays within the faulty domain and its border.

        Senders are always border nodes; recipients may also be crashed
        members (early proposals are addressed to border nodes of partial
        views, which can include not-yet-detected crashed nodes — those
        deliveries are dropped by the network).
        """
        block = {(2, 2), (2, 3), (3, 2), (3, 3)}
        border = result.graph.border(block)
        assert communicating_nodes(result.trace) <= border | block
        senders = {node for node, _ in result.metrics.per_node_messages.items()}
        assert senders <= border

    def test_run_is_quiescent(self, result):
        assert result.simulator.is_quiescent()

    def test_summary_mentions_view(self, result):
        assert "decided by" in result.summary()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(1, 1), (1, 2), (2, 1)], at=1.0, spread=2.0)

        def run():
            result = run_cliff_edge(
                graph,
                schedule,
                latency=UniformLatency(0.5, 2.0),
                failure_detector=JitteredFailureDetector(0.5, 2.0),
                seed=123,
            )
            return [
                (event.time, event.kind, repr(event.node), repr(event.peer))
                for event in result.trace.events
            ]

        assert run() == run()

    def test_different_seeds_still_agree(self):
        """Simultaneous crash: every seed converges on the full region.

        (With a simultaneous crash a strict sub-region can never be decided,
        because its border contains crashed nodes whose accept can never be
        gathered.)
        """
        graph = torus(8, 8)
        schedule = region_crash(graph, [(1, 1), (1, 2), (2, 1)], at=1.0, spread=0.0)
        views = set()
        for seed in range(4):
            result = run_cliff_edge(
                graph,
                schedule,
                latency=UniformLatency(0.5, 2.0),
                failure_detector=JitteredFailureDetector(0.5, 2.0),
                seed=seed,
                check=True,
            )
            assert result.specification.holds
            views.update(result.decided_views)
        assert views == {Region(frozenset({(1, 1), (1, 2), (2, 1)}))}

    def test_staggered_crash_may_settle_on_an_early_subregion(self):
        """With slow (staggered) crashes an early sub-region can be agreed
        before the region finishes growing; the specification still holds
        (decisions are final, CD6 prevents any conflicting later decision).
        """
        graph = torus(8, 8)
        schedule = region_crash(graph, [(1, 1), (1, 2), (2, 1)], at=1.0, spread=2.0)
        for seed in range(4):
            result = run_cliff_edge(
                graph,
                schedule,
                latency=UniformLatency(0.5, 2.0),
                failure_detector=JitteredFailureDetector(0.5, 2.0),
                seed=seed,
                check=True,
            )
            assert result.specification.holds
            assert len(result.decided_views) >= 1
            for view in result.decided_views:
                assert view.members <= schedule.nodes


class TestAssortedTopologies:
    @pytest.mark.parametrize(
        "name,graph,members",
        [
            ("ring", ring(20, successors=2), [5, 6, 7]),
            ("smallworld", watts_strogatz(40, 4, 0.2, seed=3), [10]),
            ("geometric", random_geometric(40, 0.3, seed=5), [7]),
            (
                "communities",
                clustered_communities(3, 6, seed=2),
                [(1, 0), (1, 1), (1, 2)],
            ),
        ],
    )
    def test_specification_holds(self, name, graph, members):
        if not graph.is_connected_subset(members):
            pytest.skip(f"{name}: sampled members not connected for this seed")
        schedule = region_crash(graph, members, at=1.0, spread=1.0)
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, 2.0),
            check=True,
        )
        assert result.specification.holds, result.specification.summary()
        assert result.metrics.decisions > 0

    def test_two_disjoint_regions_decided_independently(self):
        graph = torus(10, 10)
        schedule = multi_region_crash(
            graph, [[(1, 1), (1, 2)], [(6, 6), (6, 7), (7, 6)]], at=1.0
        )
        result = run_cliff_edge(graph, schedule, check=True)
        assert result.specification.holds
        assert len(result.decided_views) == 2
        members = {frozenset(view.members) for view in result.decided_views}
        assert members == {
            frozenset({(1, 1), (1, 2)}),
            frozenset({(6, 6), (6, 7), (7, 6)}),
        }

    def test_cascade_converges_to_full_region(self):
        graph = torus(9, 9)
        schedule = cascade_crash(graph, (4, 4), 5, start=1.0, spacing=2.0)
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, 1.5),
            check=True,
        )
        assert result.specification.holds
        # The final agreed view covers the whole cascade (possibly after
        # earlier smaller agreements failed and were retried).
        assert Region(frozenset(schedule.nodes)) in result.decided_views

    def test_single_node_crash(self):
        graph = grid(5, 5)
        schedule = region_crash(graph, [(2, 2)], at=1.0)
        result = run_cliff_edge(graph, schedule, check=True)
        assert result.specification.holds
        assert result.decided_views == {Region(frozenset({(2, 2)}))}
        assert result.deciding_nodes == graph.border({(2, 2)})

    def test_no_crash_no_activity(self):
        from repro.failures import CrashSchedule

        graph = grid(5, 5)
        result = run_cliff_edge(graph, CrashSchedule(), check=True)
        assert result.metrics.messages_sent == 0
        assert result.metrics.decisions == 0
        assert result.specification.holds

    def test_corner_region_with_small_border(self):
        graph = grid(6, 6)
        schedule = region_crash(graph, [(0, 0), (0, 1), (1, 0), (1, 1)], at=1.0)
        result = run_cliff_edge(graph, schedule, check=True)
        assert result.specification.holds
        assert result.deciding_nodes == graph.border(
            {(0, 0), (0, 1), (1, 0), (1, 1)}
        )

    def test_single_border_node_region(self):
        """A whole community crashes except its single bridge node."""
        graph = grid(4, 4)
        # Crash everything except (0, 0) and its neighbours' neighbours such
        # that exactly one survivor borders the region: use a line instead.
        line_graph = ring(6, successors=1)
        schedule = region_crash(line_graph, [2, 3], at=1.0)
        result = run_cliff_edge(line_graph, schedule, check=True)
        assert result.specification.holds
        assert result.deciding_nodes == {1, 4}


class TestRunnerOptions:
    def test_custom_node_factory(self):
        graph = grid(5, 5)
        schedule = region_crash(graph, [(2, 2)], at=1.0)
        created = []

        def factory(node_id):
            node = CliffEdgeNode(node_id)
            created.append(node_id)
            return node

        result = run_cliff_edge(graph, schedule, node_factory=factory, check=False)
        assert len(created) == len(graph)
        assert result.metrics.decisions == 4

    def test_until_bound_stops_early(self):
        graph = grid(6, 6)
        schedule = region_crash(graph, [(2, 2), (2, 3)], at=1.0)
        result = run_cliff_edge(graph, schedule, until=1.5, check=False)
        assert not result.simulator.is_quiescent()
        assert result.metrics.decisions == 0

    def test_node_accessor_type_checked(self):
        graph = grid(5, 5)
        schedule = region_crash(graph, [(2, 2)], at=1.0)
        result = run_cliff_edge(graph, schedule)
        node = result.node((1, 2))
        assert isinstance(node, CliffEdgeNode)
        assert node.has_decided

    def test_check_specification_cached(self):
        graph = grid(5, 5)
        schedule = region_crash(graph, [(2, 2)], at=1.0)
        result = run_cliff_edge(graph, schedule, check=False)
        assert result.specification is None
        report = result.check_specification()
        assert report is result.specification
        assert report.holds
