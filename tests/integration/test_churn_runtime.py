"""Integration tests for the churn subsystem on both runtimes."""

from __future__ import annotations

import os

import pytest

from repro.churn import (
    MembershipSchedule,
    check_churn_all,
    crash_recover_recrash,
    leave,
    recover,
    run_churn,
    run_churn_asyncio,
)
from repro.experiments import (
    churn_flash_crowd_scenario,
    churn_recovery_race_scenario,
    churn_steady_scenario,
)
from repro.cli import main as cli_main
from repro.failures import CrashSchedule, region_crash
from repro.graph import KnowledgeGraph, Region
from repro.graph.generators import grid
from repro.sim.events import EventKind


BLOCK = [(2, 2), (2, 3), (3, 2), (3, 3)]

def churn_asyncio(*args, **kwargs):
    """The churn harness's asyncio leg, on virtual time by default.

    CI routes this leg through the deterministic virtual-time loop
    (ROADMAP item 3): zero real sleeps, reproducible digests.  Set
    ``REPRO_CHURN_WALLCLOCK=1`` to drive the same runtime on the wall
    clock instead; dedicated wall-clock coverage also lives in
    ``tests/integration/test_asyncio_runtime.py``.
    """
    kwargs.setdefault(
        "virtual", os.environ.get("REPRO_CHURN_WALLCLOCK", "") != "1"
    )
    return run_churn_asyncio(*args, **kwargs)


class TestCrashRecoverRecrash:
    @pytest.fixture(scope="class")
    def scenario(self):
        graph = grid(6, 6)
        crashes, membership = crash_recover_recrash(
            graph, BLOCK, crash_at=1.0, recover_at=40.0, recrash_at=80.0
        )
        return graph, crashes, membership

    @pytest.fixture(scope="class")
    def sim_result(self, scenario):
        graph, crashes, membership = scenario
        return run_churn(graph, crashes, membership, check=True)

    @pytest.fixture(scope="class")
    def async_result(self, scenario):
        graph, crashes, membership = scenario
        return churn_asyncio(graph, crashes, membership, check=True)

    def test_simulator_satisfies_epoch_specification(self, sim_result):
        assert sim_result.quiescent
        assert sim_result.specification.holds, sim_result.specification.summary()

    def test_block_decided_once_per_crash_epoch(self, sim_result):
        block_view = tuple(sorted(frozenset(BLOCK), key=repr))
        # 8 border nodes decide in each of the two crash epochs.
        assert sim_result.decided_view_multiset.count(block_view) == 16
        assert sim_result.decided_views == {Region(frozenset(BLOCK))}

    def test_epochs_reconstructed(self, sim_result):
        # initial epoch + one per recovered node.
        assert len(sim_result.epochs) == 1 + len(BLOCK)
        assert all(
            epoch.graph == sim_result.base_graph for epoch in sim_result.epochs
        )

    def test_asyncio_satisfies_epoch_specification(self, async_result):
        assert async_result.quiescent
        assert async_result.specification.holds, async_result.specification.summary()

    def test_runtimes_reach_identical_decisions(self, sim_result, async_result):
        # Race-free timing: both runtimes must produce the *same multiset*
        # of decisions, not merely the same distinct views.
        assert sim_result.decided_view_multiset == async_result.decided_view_multiset
        assert sim_result.deciding_nodes == async_result.deciding_nodes

    def test_fresh_incarnation_spawned(self, sim_result):
        restarts = [
            event
            for event in sim_result.trace.of_kind(EventKind.NODE_STARTED)
            if event.node in set(BLOCK)
        ]
        # one initial start + one per recovery
        assert len(restarts) == 2 * len(BLOCK)


class TestRecoveryRace:
    def test_recovery_racing_agreement_stays_within_spec(self):
        scenario = churn_recovery_race_scenario(seed=1)
        result = scenario.run(check=True, seed=1)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()
        # Whatever the interleaving, only the block itself is ever decided.
        block = frozenset([(1, 1), (1, 2), (2, 1), (2, 2)])
        assert result.decided_views <= {Region(block)}


class TestSteadyChurn:
    def test_steady_scenario_holds_and_decides_every_cycle(self):
        scenario = churn_steady_scenario(nodes=64, churn_rate=0.05, seed=1)
        result = scenario.run(check=True, seed=1)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()
        assert result.metrics.decisions >= len(scenario.membership)


class TestFlashCrowd:
    def test_joins_grow_graph_without_disturbing_agreement(self):
        scenario = churn_flash_crowd_scenario(nodes=64, crowd=6, seed=2)
        result = scenario.run(check=True, seed=2)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()
        assert len(result.final_graph) == len(result.base_graph) + 6
        block = frozenset([(1, 1), (1, 2), (2, 1), (2, 2)])
        assert result.decided_views == {Region(block)}
        # Newcomers never speak: they are outside every faulty-domain scope.
        joined = {event.node for event in result.trace.of_kind(EventKind.NODE_JOINED)}
        speakers = {
            event.node for event in result.trace.of_kind(EventKind.MESSAGE_SENT)
        }
        assert not (joined & speakers)


class TestGracefulLeave:
    def test_leave_mid_agreement_merges_into_region(self):
        graph = grid(6, 6)
        crashes = region_crash(graph, [(2, 2), (2, 3)], at=1.0)
        leaves = MembershipSchedule((leave((1, 2), 2.5), leave((5, 5), 4.0)))
        result = run_churn(graph, crashes, leaves, check=True)
        assert result.quiescent
        assert result.specification.holds, result.specification.summary()
        merged = Region(frozenset({(1, 2), (2, 2), (2, 3)}))
        lone = Region(frozenset({(5, 5)}))
        assert result.decided_views == {merged, lone}

    def test_static_checkers_still_work_on_unchurned_runs(self):
        graph = grid(6, 6)
        crashes = region_crash(graph, BLOCK, at=1.0)
        result = run_churn(graph, crashes, MembershipSchedule(), check=True)
        assert len(result.epochs) == 1
        assert result.specification.holds
        # The epoch-quotiented checkers agree with the static ones here.
        report = check_churn_all(graph, result.trace)
        assert report.holds


class TestDistantWatcherRecovery:
    def test_non_neighbour_subscribers_learn_of_recoveries(self):
        """Recovery announcements must reach the old incarnation's distant
        watchers, not just graph neighbours.

        On t-a-A-B, node ``a`` monitors B transitively (line 7) after A
        and B crash.  When both recover and only A re-crashes, ``a`` must
        have dropped B from its crashed knowledge — the epoch-2 decision
        is {A}, not the stale {A, B}.
        """
        graph = KnowledgeGraph([("t", "a"), ("a", "A"), ("A", "B")])
        crashes = CrashSchedule(
            (("A", 1.0), ("B", 1.0), ("A", 80.0)), allow_recrash=True
        )
        membership = MembershipSchedule((recover("A", 40.0), recover("B", 40.0)))
        for runner in (run_churn, churn_asyncio):
            result = runner(graph, crashes, membership, check=True)
            assert result.quiescent
            assert result.specification.holds, (
                runner.__name__ + ":\n" + result.specification.summary()
            )
            assert result.decided_views == {
                Region(frozenset({"A", "B"})),
                Region(frozenset({"A"})),
            }, runner.__name__


class TestScheduleErrorSurfacing:
    def test_asyncio_raises_when_membership_event_fails(self):
        """A failing membership event must not masquerade as quiescence."""

        class ExplodingPolicy:
            def neighbours_for(self, node, *, current, base, crashed, rng):
                raise RuntimeError("attachment exploded")

        graph = grid(4, 4)
        crashes = CrashSchedule((((1, 1), 1.0),))
        membership = MembershipSchedule(
            (recover((1, 1), 5.0, ExplodingPolicy()),)
        )
        with pytest.raises(RuntimeError, match="attachment exploded"):
            run_churn_asyncio(graph, crashes, membership)

    def test_asyncio_validates_membership_upfront(self):
        graph = grid(4, 4)
        bad = MembershipSchedule((recover((1, 1), 5.0),))  # never crashed
        with pytest.raises(Exception):
            run_churn_asyncio(graph, CrashSchedule(), bad)


class TestChurnCli:
    def test_cli_steady_runs_end_to_end(self):
        lines: list[str] = []
        code = cli_main(
            ["churn", "--nodes", "64", "--churn-rate", "0.05", "--seed", "1"],
            write=lines.append,
        )
        assert code == 0
        output = "\n".join(lines)
        assert "epoch-quotiented specification CD1-CD7: holds" in output

    def test_cli_race_compares_runtimes(self):
        lines: list[str] = []
        code = cli_main(
            ["churn", "--scenario", "race", "--runtime", "both", "--seed", "1"],
            write=lines.append,
        )
        assert code == 0
        assert any("runtimes decided identical views: True" in line for line in lines)
