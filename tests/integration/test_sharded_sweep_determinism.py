"""Determinism regression suite for the scale subsystem.

Two contracts, each able to silently break the reproducibility the whole
repository is built on:

* **Sharding is invisible** — a sweep's per-run canonical trace digests
  (and the merged report digest) are identical for ``workers=1`` and
  ``workers=N``.
* **Batched dispatch is invisible** — a full simulation run produces an
  identical trace whether the scheduler uses the batched same-timestamp
  fast path or the unbatched reference loop.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import SweepSpec, run_spec
from repro.churn import crash_recover_recrash, run_churn
from repro.core import CliffEdgeNode
from repro.experiments import churn_property_sweep, property_sweep, torus_scale_family
from repro.failures import region_crash
from repro.graph.generators import grid, torus
from repro.scale import ShardedSweepRunner, churn_property_tasks, property_tasks, torus_scale_tasks
from repro.sim import ConstantLatency, EventScheduler, PerfectFailureDetector, Simulator
from repro.trace import collect_metrics

GOLDEN_SPEC = Path(__file__).resolve().parents[1] / "data" / "golden_spec.json"
#: Pinned canonical digest of the golden sweep spec itself (a pure
#: function of the document — breaks only if the spec format changes).
GOLDEN_SPEC_DIGEST = "59cc4ec8cd67e75be8ae211e740e86d1f1c4c00fd4da4efb887206d31d13f5d9"


class TestShardedSweepDeterminism:
    def test_property_sweep_digest_equal_across_worker_counts(self):
        seeds = tuple(range(4))
        sequential = property_sweep(seeds=seeds, workers=1)
        sharded = property_sweep(seeds=seeds, workers=2)
        assert [case.digest for case in sequential] == [case.digest for case in sharded]
        assert [case.as_row() for case in sequential] == [
            case.as_row() for case in sharded
        ]

    def test_churn_sweep_digest_equal_across_worker_counts(self):
        seeds = tuple(range(3))
        sequential = churn_property_sweep(seeds=seeds, workers=1)
        sharded = churn_property_sweep(seeds=seeds, workers=2)
        assert [case.digest for case in sequential] == [case.digest for case in sharded]

    def test_torus_family_report_digest_equal_across_worker_counts(self):
        tasks = torus_scale_tasks(side=8, scenarios=3)
        one = ShardedSweepRunner(workers=1).run(tasks)
        many = ShardedSweepRunner(workers=3).run(tasks)
        assert one.digest() == many.digest()
        assert [o.digest for o in one.outcomes] == [o.digest for o in many.outcomes]
        assert one.all_hold and one.all_quiescent

    def test_derived_seeds_do_not_depend_on_worker_count(self):
        tasks = property_tasks(range(3)) + churn_property_tasks(range(2))
        for workers in (1, 2, 4):
            runner = ShardedSweepRunner(workers=workers, base_seed=11)
            seeds = [runner.seed_for(task, i) for i, task in enumerate(tasks)]
            assert seeds == [
                ShardedSweepRunner(workers=1, base_seed=11).seed_for(task, i)
                for i, task in enumerate(tasks)
            ]


class TestGoldenSpecDeterminism:
    """The golden sweep spec pins the declarative layer end to end."""

    def _load(self) -> SweepSpec:
        from repro.api import load_spec

        spec = load_spec(GOLDEN_SPEC.read_text())
        assert isinstance(spec, SweepSpec)
        return spec

    def test_golden_spec_digest_is_pinned(self):
        spec = self._load()
        assert spec.digest() == GOLDEN_SPEC_DIGEST

    def test_golden_spec_round_trips_byte_identically(self):
        spec = self._load()
        assert spec.to_json() + "\n" == GOLDEN_SPEC.read_text()
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_golden_sweep_digest_equal_across_worker_counts(self):
        import dataclasses

        spec = self._load()
        sharded = run_spec(spec)
        inline = run_spec(dataclasses.replace(spec, workers=1))
        assert sharded.digest() == inline.digest()
        assert [o.digest for o in sharded.outcomes] == [
            o.digest for o in inline.outcomes
        ]
        assert sharded.all_hold and sharded.all_quiescent
        assert len(sharded) == len(spec)

    def test_spec_task_seeds_are_pinned_not_derived(self):
        # Experiment-mode tasks pin the point's own seed, so the runner's
        # base seed cannot perturb spec-driven runs.
        spec = self._load()
        for task, point in zip(spec.tasks(), spec.expand()):
            assert task.seed == point.seed


class TestBatchedDispatchDeterminism:
    """Full runs through the Simulator: batched vs unbatched scheduler."""

    @staticmethod
    def _run(graph, apply_schedules, batch_dispatch: bool):
        sim = Simulator(
            graph,
            latency=ConstantLatency(1.0),
            failure_detector=PerfectFailureDetector(1.0),
            seed=5,
            scheduler=EventScheduler(batch_dispatch=batch_dispatch),
        )
        sim.populate(lambda node: CliffEdgeNode(node))
        apply_schedules(sim)
        sim.run()
        return sim

    @pytest.mark.parametrize("seed", [0, 1])
    def test_static_block_run_identical_traces(self, seed):
        graph = grid(6, 6)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        runs = {}
        for batched in (True, False):
            sim = Simulator(
                graph,
                latency=ConstantLatency(1.0),
                failure_detector=PerfectFailureDetector(1.0),
                seed=seed,
                scheduler=EventScheduler(batch_dispatch=batched),
            )
            sim.populate(lambda node: CliffEdgeNode(node))
            schedule.applied_to(sim)
            sim.run()
            runs[batched] = sim
        assert runs[True].trace.digest() == runs[False].trace.digest()
        assert runs[True].processed_events == runs[False].processed_events
        metrics = collect_metrics(runs[True].trace)
        assert metrics.decisions > 0

    def test_churn_run_identical_traces(self):
        graph = torus(6, 6)
        crashes, membership = crash_recover_recrash(
            graph, [(1, 1), (1, 2)], crash_at=1.0, recover_at=12.0, recrash_at=30.0
        )
        digests = set()
        for batched in (True, False):
            sim = Simulator(
                graph,
                latency=ConstantLatency(1.0),
                failure_detector=PerfectFailureDetector(1.0),
                seed=2,
                scheduler=EventScheduler(batch_dispatch=batched),
            )
            sim.populate(lambda node: CliffEdgeNode(node))
            membership.applied_to(sim, crashes=crashes)
            sim.run()
            digests.add(sim.trace.digest())
        assert len(digests) == 1

    def test_run_churn_default_matches_unbatched_outcomes(self):
        # run_churn uses the default (batched) scheduler; its decisions
        # must match an explicitly unbatched execution of the same script.
        graph = torus(6, 6)
        crashes, membership = crash_recover_recrash(
            graph, [(2, 2)], crash_at=1.0, recover_at=10.0, recrash_at=25.0
        )
        batched_result = run_churn(graph, crashes, membership, seed=3, check=True)
        sim = Simulator(
            graph,
            latency=ConstantLatency(1.0),
            failure_detector=PerfectFailureDetector(1.0),
            seed=3,
            scheduler=EventScheduler(batch_dispatch=False),
        )
        sim.populate(lambda node: CliffEdgeNode(node))
        membership.applied_to(sim, crashes=crashes)
        sim.run()
        assert batched_result.specification.holds
        assert batched_result.trace.digest() == sim.trace.digest()


@pytest.mark.slow
class TestLargeTorusFamily:
    """The 4096-node scale family (ROADMAP item); slow-marked."""

    def test_4096_node_family_runs_and_verifies(self):
        family = torus_scale_family(side=64, scenarios=4)
        assert all(len(scenario.graph) == 4096 for scenario in family)
        tasks = torus_scale_tasks(side=64, scenarios=4)
        report = ShardedSweepRunner(workers=2).run(tasks)
        assert report.all_hold and report.all_quiescent
        assert report.digest() == ShardedSweepRunner(workers=1).run(tasks).digest()
