"""Cross-substrate fault-injection integration suite.

The fault layer's end-to-end promise: for a given spec + seed, the
*same* messages are lost, duplicated and delayed on every substrate —
the sequential simulator, the partitioned simulator at any partition
count, and the asyncio runtime on the virtual-time loop.  This suite
pins that promise (digest equality, decided-view agreement) and the
degradation report built on top of it.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    ExperimentSession,
    ExperimentSpec,
    SpecError,
    fault_preset,
    fault_sweep_spec,
    quickstart_spec,
    run_spec,
)
from repro.cli import main as cli_main
from repro.experiments import degradation_from_sweep, run_degradation
from repro.experiments.degradation import QUIESCENCE, excuse_set
from repro.experiments.runner import run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import grid, torus
from repro.sim import EventKind
from repro.sim.faults import DuplicatingLinks, LossyLinks, ReorderingLinks, compose_faults
from repro.sim.partition import PartitionError, run_partitioned

BLOCK = [(2, 2), (2, 3), (3, 2), (3, 3)]

FAULT_MODELS = {
    "loss": LossyLinks(0.05),
    "duplication": DuplicatingLinks(0.3, copies=3),
    "reorder": ReorderingLinks(1.0),
    "combined": compose_faults(
        LossyLinks(0.02), DuplicatingLinks(0.1), ReorderingLinks(0.5)
    ),
}


class TestPartitionedEquivalence:
    @pytest.mark.parametrize("name", sorted(FAULT_MODELS))
    def test_digest_identical_across_partition_counts(self, name):
        faults = FAULT_MODELS[name]
        graph = torus(8, 8)
        schedule = region_crash(graph, BLOCK, at=1.0)
        sequential = run_cliff_edge(graph, schedule, seed=0, faults=faults)
        for partitions in (2, 4):
            partitioned = run_partitioned(
                graph,
                schedule,
                partitions=partitions,
                seed=0,
                backend="inline",
                faults=faults,
            )
            assert partitioned.digest() == sequential.digest(), name
            assert list(partitioned.trace) == list(sequential.trace), name

    def test_fault_events_present_and_identical(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, BLOCK, at=1.0)
        faults = FAULT_MODELS["combined"]
        sequential = run_cliff_edge(graph, schedule, seed=0, faults=faults)
        lost = list(sequential.trace.of_kind(EventKind.MESSAGE_LOST))
        duplicated = list(sequential.trace.of_kind(EventKind.MESSAGE_DUPLICATED))
        assert lost and duplicated
        partitioned = run_partitioned(
            graph, schedule, partitions=3, seed=0, backend="inline", faults=faults
        )
        assert list(partitioned.trace.of_kind(EventKind.MESSAGE_LOST)) == lost

    def test_custom_model_rejected_loudly(self):
        class Custom:
            def deliveries(self, source, target, sequence, seed=0):
                return (0.0,)

            def max_extra_delay(self):
                return 0.0

        graph = grid(6, 6)
        schedule = region_crash(graph, BLOCK, at=1.0)
        with pytest.raises(PartitionError, match="not supported"):
            run_partitioned(
                graph, schedule, partitions=2, seed=0, backend="inline", faults=Custom()
            )


def _spec_with(faults):
    return quickstart_spec(side=6, block=2, seed=1).with_faults(faults)


class TestSpecRouting:
    """The ``faults`` block reaches every engine the session can pick."""

    @pytest.mark.parametrize(
        "faults",
        [{"loss": 0.05}, {"duplication": 0.3}, {"reorder": 1.0, "seed": 4}],
        ids=["loss", "duplication", "reorder"],
    )
    def test_sequential_and_partitioned_sessions_agree(self, faults):
        spec = _spec_with(faults)
        sequential = ExperimentSession().run(spec)
        sharded = ExperimentSession().run(spec.with_partitions(3))
        assert sharded.digest() == sequential.digest()

    def test_sim_and_virtual_asyncio_decide_identically(self):
        """Decided views must agree across the simulator and the
        virtual-time asyncio runtime under faults.  Duplication and
        bounded reorder never change *what* is decided here — only loss
        could, and this rate keeps the scenario deliverable."""
        spec = _spec_with({"duplication": 0.3, "reorder": 0.3, "seed": 2})
        sim = ExperimentSession().run(spec.with_engine("sim"))
        virtual = ExperimentSession().run(spec.with_engine("asyncio-virtual"))
        assert sim.quiescent and virtual.quiescent
        assert sim.decided_views == virtual.decided_views
        assert sim.specification.holds and virtual.specification.holds

    def test_virtual_asyncio_faulted_digest_reproducible(self):
        spec = _spec_with({"loss": 0.1, "seed": 5}).with_engine("asyncio-virtual")
        first = ExperimentSession().run(spec)
        second = ExperimentSession().run(spec)
        assert first.digest() == second.digest()

    def test_spec_document_round_trip_preserves_faults(self):
        spec = _spec_with({"loss": 0.05, "reorder": 0.5})
        round_tripped = ExperimentSpec.from_json(spec.to_json())
        assert round_tripped == spec
        assert run_spec(round_tripped).digest() == ExperimentSession().run(spec).digest()


class TestDegradationReport:
    def test_loss_axis_degrades_only_excused_properties(self):
        report = run_degradation(
            quickstart_spec(side=6, block=2), "loss", rates=[0.0, 0.1], seeds=[0, 1]
        )
        assert report.axis == "loss"
        assert len(report.points) == 4
        baseline = [point for point in report.points if point.rate == 0.0]
        assert all(point.spec_holds and point.quiescent for point in baseline)
        assert all(point.faults is None for point in baseline)
        assert report.acceptable, report.summary()
        failing = report.failing_rates()
        assert all(code in excuse_set({"loss": 0.1}) for code in failing)

    def test_duplication_axis_holds_everywhere(self):
        report = run_degradation(
            quickstart_spec(side=6, block=2), "duplication", rates=[0.3], seeds=[0]
        )
        assert report.holds_everywhere, report.summary()

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="unknown fault axis"):
            run_degradation(quickstart_spec(), "latency", rates=[0.1])

    def test_sweep_and_in_process_reports_agree(self):
        """`degradation_from_sweep` over a real sweep must reproduce the
        in-process battery point for point (same digests, verdicts)."""
        sweep = fault_sweep_spec(axis="loss", rates=(0.0, 0.1), seeds=(0, 1))
        from_sweep = degradation_from_sweep(sweep, run_spec(sweep))
        in_process = run_degradation(
            quickstart_spec(side=6, block=2), "loss", rates=[0.0, 0.1], seeds=[0, 1]
        )
        key = lambda p: (p.rate, p.seed)
        assert sorted(
            (p.rate, p.seed, p.digest, p.failed_properties) for p in from_sweep.points
        ) == sorted(
            (p.rate, p.seed, p.digest, p.failed_properties) for p in in_process.points
        )

    def test_quiescence_pseudo_property_excused_only_under_loss(self):
        assert QUIESCENCE in excuse_set({"loss": 0.1})
        assert QUIESCENCE not in excuse_set({"duplication": 0.5})
        assert QUIESCENCE not in excuse_set(None)


class TestFaultsCli:
    def _run(self, argv):
        lines: list[str] = []
        code = cli_main(argv, write=lines.append)
        return code, "\n".join(str(line) for line in lines)

    def test_run_faults_override_matches_in_process_run(self, tmp_path):
        """``repro run --faults dupes`` must execute exactly the spec
        with the preset's block installed — same digest as in-process."""
        path = tmp_path / "spec.json"
        path.write_text(_spec_with(None).to_json())
        code, output = self._run(["run", str(path), "--faults", "dupes", "--json"])
        assert code == 0
        expected = ExperimentSession().run(_spec_with(fault_preset("dupes")))
        assert json.loads(output)["digest"] == expected.digest()

    def test_sweep_faults_prints_degradation_table(self):
        code, output = self._run(
            ["sweep", "--faults", "loss=0:0.1", "--cases", "1"]
        )
        assert "degradation along 'loss'" in output
        assert "holds" in output and "excused by the fault model" in output
        assert code == 0

    def test_sweep_faults_conflicts_return_usage_error(self):
        code, output = self._run(["sweep", "--faults", "loss=0:0.1", "--churn"])
        assert code == 2 and "--faults" in output
        code, output = self._run(["sweep", "--faults", "loss=0.1", "--cases", "1"])
        assert code == 2 and "axis" in output

    def test_churn_faults_stay_deterministic(self):
        argv = [
            "churn",
            "--scenario",
            "steady",
            "--nodes",
            "36",
            "--duration",
            "30",
            "--faults",
            "loss=0.01",
            "--json",
        ]
        code, first = self._run(argv)
        _, second = self._run(argv)
        assert json.loads(first)["runs"][0]["digest"] == (
            json.loads(second)["runs"][0]["digest"]
        )
