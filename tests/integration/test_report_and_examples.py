"""Integration tests for the report generator and the example scripts."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.report import (
    ReportSection,
    _ablation_sections,
    _fig1_section,
    _fig2_section,
    _fig3_section,
    _repair_section,
    render_report,
)

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = Path(__file__).resolve().parents[2] / "src"

#: Environment for example subprocesses: make ``repro`` importable even
#: when the suite itself was launched via pytest's ``pythonpath`` option
#: (which is process-local and not inherited by children).
_EXAMPLE_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        filter(None, [str(SRC_DIR), os.environ.get("PYTHONPATH")])
    ),
}


class TestReportSections:
    def test_fig1_section(self):
        section = _fig1_section()
        assert section.experiment_id == "FIG-1"
        assert len(section.rows) == 2
        assert any("converged on F3: True" in note for note in section.notes)

    def test_fig2_section(self):
        section = _fig2_section()
        assert section.experiment_id == "FIG-2"
        assert len(section.rows) == 4
        assert any("CD7" in note for note in section.notes)

    def test_fig3_section(self):
        section = _fig3_section()
        assert section.rows[0]["no_conflicting_decision"] is True

    def test_repair_section_quick(self):
        section = _repair_section(quick=True)
        assert all(row["ring_restored"] for row in section.rows)

    def test_ablation_sections(self):
        a1, a2, a3 = _ablation_sections()
        assert a1.experiment_id == "EXP-A1"
        assert a2.experiment_id == "EXP-A2"
        assert a3.experiment_id == "EXP-A3"
        assert len(a2.rows) == 3
        assert len(a3.rows) == 4

    def test_render_report_plain_and_markdown(self):
        section = ReportSection(
            "EXP-X", "demo", rows=[{"a": 1, "b": True}], notes=["note"]
        )
        plain = render_report([section])
        markdown = render_report([section], markdown=True)
        assert "## EXP-X — demo" in plain
        assert "* note" in plain
        assert "| a | b |" in markdown

    def test_render_empty_section(self):
        section = ReportSection("EXP-Y", "empty")
        assert "(no table)" in section.to_text()


@pytest.mark.parametrize(
    "script,expected",
    [
        ("quickstart.py", "specification (CD1-CD7)"),
        ("conflicting_views.py", "all deciders converged on F3:   True"),
        ("overlay_repair.py", "ring restored=True"),
        ("asyncio_runtime.py", "both runtimes agreed on the same crashed region(s): True"),
        ("churn_recovery.py", "same decided views as the simulator: True"),
        ("declarative_spec.py", "all hold: True"),
        ("lossy_links.py", "acceptable (every failure excused): True"),
    ],
)
def test_example_scripts_run(script, expected):
    """Each example runs as a standalone script and prints its conclusion."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_EXAMPLE_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_locality_example_runs_quick():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "locality_scaling.py")],
        capture_output=True,
        text=True,
        timeout=600,
        env=_EXAMPLE_ENV,
    )
    assert result.returncode == 0, result.stderr
    assert "message cost flat across system sizes: True" in result.stdout
    assert "EXP-B1" in result.stdout
