"""Determinism suite of the partitioned simulator backend.

The contract under test: for any scenario the backend supports,
``run_partitioned(..., partitions=N)`` produces a trace **bit-identical**
(same canonical digest, same event list) to the sequential simulator —
for every partition count, on both the inline and the process backend.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import (
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
    run_spec,
)
from repro.churn import crash_recover_recrash, flash_crowd_joins, steady_state_churn
from repro.churn.membership import MembershipSchedule, leave
from repro.churn.runner import run_churn
from repro.experiments.runner import run_cliff_edge
from repro.failures import cascade_crash, region_crash
from repro.graph.generators import grid, torus
from repro.sim import EventKind, UniformLatency
from repro.sim.failure_detector import JitteredFailureDetector
from repro.sim.partition import (
    PartitionError,
    measure_worker_payloads,
    run_partitioned,
)
from repro.trace import TraceUnavailableError, collect_metrics


def _assert_equal_traces(sequential, partitioned):
    assert partitioned.digest() == sequential.digest()
    assert list(partitioned.trace) == list(sequential.trace)


class TestStaticDeterminism:
    def test_torus_block_digest_equal_across_partition_counts(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        sequential = run_cliff_edge(graph, schedule, seed=0, check=True)
        assert sequential.specification.holds
        for partitions in (1, 2, 3, 5):
            partitioned = run_partitioned(
                graph,
                schedule,
                partitions=partitions,
                seed=0,
                check=True,
                backend="inline",
            )
            _assert_equal_traces(sequential, partitioned)
            assert partitioned.specification.holds
            assert partitioned.quiescent
            assert partitioned.partitions == partitions

    def test_mid_epoch_crashes_cross_barrier_windows(self):
        # Crashes at fractional times spread across several barrier
        # windows: the barrier protocol must neither delay nor reorder
        # the replicated control events relative to in-flight messages.
        graph = torus(10, 10)
        schedule = region_crash(
            graph, [(2, 2), (2, 3), (3, 2), (3, 3), (4, 3)], at=1.3, spread=2.7
        )
        sequential = run_cliff_edge(graph, schedule, seed=1)
        partitioned = run_partitioned(
            graph, schedule, partitions=4, seed=1, backend="inline"
        )
        _assert_equal_traces(sequential, partitioned)
        assert partitioned.barrier_rounds > 1

    def test_cascade_digest_equal(self):
        graph = torus(10, 10)
        schedule = cascade_crash(graph, (5, 5), 6, start=0.7, spacing=0.4)
        sequential = run_cliff_edge(graph, schedule, seed=2)
        for partitions in (2, 3):
            partitioned = run_partitioned(
                graph, schedule, partitions=partitions, seed=2, backend="inline"
            )
            _assert_equal_traces(sequential, partitioned)

    def test_until_clamp_matches_sequential(self):
        graph = torus(10, 10)
        schedule = cascade_crash(graph, (5, 5), 6, start=0.7, spacing=0.4)
        sequential = run_cliff_edge(graph, schedule, seed=2, until=4.9)
        partitioned = run_partitioned(
            graph, schedule, partitions=3, seed=2, until=4.9, backend="inline"
        )
        _assert_equal_traces(sequential, partitioned)
        assert partitioned.quiescent == sequential.quiescent
        assert not partitioned.quiescent

    def test_process_backend_digest_equal(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(4, 4), (4, 5)], at=1.0)
        sequential = run_cliff_edge(graph, schedule, seed=3)
        partitioned = run_partitioned(
            graph, schedule, partitions=2, seed=3, backend="process"
        )
        _assert_equal_traces(sequential, partitioned)

    def test_ablation_knobs_forwarded(self):
        graph = grid(8, 8)
        schedule = region_crash(graph, [(3, 3), (3, 4), (4, 3)], at=1.0)
        for arbitration, early in ((False, False), (True, True)):
            sequential = run_cliff_edge(
                graph,
                schedule,
                seed=4,
                arbitration_enabled=arbitration,
                early_termination=early,
            )
            partitioned = run_partitioned(
                graph,
                schedule,
                partitions=3,
                seed=4,
                arbitration_enabled=arbitration,
                early_termination=early,
                backend="inline",
            )
            _assert_equal_traces(sequential, partitioned)


class TestChurnDeterminism:
    def test_steady_churn_digest_equal(self):
        graph = torus(8, 8)
        schedule, membership = steady_state_churn(
            graph, churn_rate=0.05, duration=40.0, seed=3
        )
        sequential = run_churn(graph, schedule, membership, seed=3, check=True)
        for partitions in (1, 2, 4):
            partitioned = run_partitioned(
                graph,
                schedule,
                membership,
                partitions=partitions,
                seed=3,
                check=True,
                backend="inline",
            )
            _assert_equal_traces(sequential, partitioned)
            assert partitioned.specification.holds == sequential.specification.holds
            assert len(partitioned.epochs) == len(sequential.epochs)
            assert partitioned.final_graph == sequential.final_graph

    def test_recover_race_digest_equal(self):
        graph = torus(10, 10)
        schedule, membership = crash_recover_recrash(
            graph, [(1, 1), (1, 2)], crash_at=1.0, recover_at=6.0, recrash_at=14.0
        )
        sequential = run_churn(graph, schedule, membership, seed=4)
        partitioned = run_partitioned(
            graph, schedule, membership, partitions=3, seed=4, backend="inline"
        )
        _assert_equal_traces(sequential, partitioned)

    def test_flash_crowd_joins_digest_equal(self):
        # Joining nodes do not exist when the graph is partitioned; each
        # one is adopted by the shard owning its first attachment point,
        # identically on every partition.
        graph = torus(10, 10)
        schedule = region_crash(graph, [(7, 7), (7, 8)], at=2.0)
        membership = flash_crowd_joins(graph, count=5, at=3.0, spacing=0.8, seed=9)
        sequential = run_churn(graph, schedule, membership, seed=9)
        partitioned = run_partitioned(
            graph, schedule, membership, partitions=4, seed=9, backend="inline"
        )
        _assert_equal_traces(sequential, partitioned)

    def test_leaves_digest_equal(self):
        graph = torus(10, 10)
        schedule = region_crash(graph, [(7, 7), (7, 8)], at=2.0)
        membership = MembershipSchedule((leave((0, 5), 2.5), leave((9, 1), 3.1)))
        sequential = run_churn(graph, schedule, membership, seed=5)
        partitioned = run_partitioned(
            graph, schedule, membership, partitions=2, seed=5, backend="inline"
        )
        _assert_equal_traces(sequential, partitioned)


class TestCrossPartitionOrdering:
    def test_crossing_deliveries_interleave_in_sequential_order(self):
        # A node on a shard border receives same-timestamp messages from
        # senders owned by different shards; the keyed scheduler must
        # interleave them exactly as the sequential run's insertion order
        # did — the per-receiver delivery sequence is the witness.
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        sequential = run_cliff_edge(graph, schedule, seed=0)
        partitioned = run_partitioned(
            graph, schedule, partitions=4, seed=0, backend="inline"
        )
        for result in (sequential, partitioned):
            assert result.metrics.messages_sent > 0

        def deliveries(result):
            return [
                (event.node, event.peer, event.time, repr(event.payload))
                for event in result.trace.of_kind(EventKind.MESSAGE_DELIVERED)
            ]

        assert deliveries(partitioned) == deliveries(sequential)

    def test_fifo_order_preserved_per_channel(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3)], at=1.0, spread=0.5)
        partitioned = run_partitioned(
            graph, schedule, partitions=4, seed=1, backend="inline"
        )
        last_delivery: dict = {}
        for event in partitioned.trace.of_kind(EventKind.MESSAGE_DELIVERED):
            channel = (event.peer, event.node)
            assert last_delivery.get(channel, -1.0) < event.time
            last_delivery[channel] = event.time


class TestStrictValidation:
    def test_random_latency_is_rejected(self):
        graph = grid(4, 4)
        schedule = region_crash(graph, [(1, 1)], at=1.0)
        with pytest.raises(PartitionError):
            run_partitioned(
                graph,
                schedule,
                partitions=2,
                latency=UniformLatency(0.5, 1.5),
                backend="inline",
            )

    def test_jittered_detector_is_rejected(self):
        graph = grid(4, 4)
        schedule = region_crash(graph, [(1, 1)], at=1.0)
        with pytest.raises(PartitionError):
            run_partitioned(
                graph,
                schedule,
                partitions=2,
                failure_detector=JitteredFailureDetector(0.5, 1.5),
                backend="inline",
            )

    def test_too_many_partitions_rejected(self):
        graph = grid(3, 3)
        schedule = region_crash(graph, [(1, 1)], at=1.0)
        with pytest.raises(PartitionError):
            run_partitioned(graph, schedule, partitions=10, backend="inline")

    def test_unknown_backend_rejected(self):
        graph = grid(3, 3)
        schedule = region_crash(graph, [(1, 1)], at=1.0)
        with pytest.raises(PartitionError):
            run_partitioned(graph, schedule, partitions=2, backend="threads")

    def test_max_events_budget_violation_raises(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3)], at=1.0)
        with pytest.raises(PartitionError):
            run_partitioned(
                graph, schedule, partitions=2, max_events=50, backend="inline"
            )


class TestSpecLayerIntegration:
    def _static_spec(self, partitions: int = 1) -> ExperimentSpec:
        return ExperimentSpec(
            topology=TopologySpec("torus", {"width": 8, "height": 8}),
            failure=FailureSpec(
                "region", {"members": [[2, 2], [2, 3], [3, 2]], "at": 1.0}
            ),
            runtime=RuntimeSpec(partitions=partitions),
            seed=2,
        )

    def test_partitioned_spec_digest_equals_sequential_spec(self):
        sequential = run_spec(self._static_spec())
        partitioned = run_spec(self._static_spec(partitions=4))
        assert partitioned.digest() == sequential.digest()
        assert partitioned.labels["partitions"] == 4
        assert partitioned.labels["spec_digest"] != sequential.labels["spec_digest"]

    def test_partitioned_churn_spec_digest_equal(self):
        churn_params = {"churn_rate": 0.05, "duration": 30.0}
        base = ExperimentSpec(
            topology=TopologySpec("torus", {"width": 8, "height": 8}),
            failure=FailureSpec("steady_churn", churn_params),
            membership=MembershipSpec("steady_churn", churn_params),
            seed=7,
        )
        assert run_spec(base.with_partitions(3)).digest() == run_spec(base).digest()

    def test_unbatched_partitioned_spec_rejected(self):
        spec = ExperimentSpec(
            topology=TopologySpec("grid", {"width": 4, "height": 4}),
            runtime=RuntimeSpec(batched=False, partitions=2),
        )
        with pytest.raises(SpecError):
            run_spec(spec)

    def test_asyncio_partitions_rejected_at_construction(self):
        with pytest.raises(SpecError):
            RuntimeSpec(engine="asyncio", partitions=2)


_DIGEST_CHILD_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.runner import run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import torus
from repro.sim.partition import run_partitioned
graph = torus(8, 8)
schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
print(run_partitioned(
    graph, schedule, partitions=2, seed=0, backend="inline",
    collection="digest",
).digest())
print(run_cliff_edge(graph, schedule, seed=0, check=False).digest())
"""


class TestDigestCollection:
    """``collection="digest"`` ships zero trace bytes but must stay
    digest-identical to a full-trace run — on every partition count,
    on both backends, through the spec layer and through sweeps."""

    def _scenario(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        return graph, schedule

    def test_digest_mode_equal_across_partition_counts(self):
        graph, schedule = self._scenario()
        sequential = run_cliff_edge(graph, schedule, seed=0)
        for partitions in (1, 2, 4):
            lean = run_partitioned(
                graph,
                schedule,
                partitions=partitions,
                seed=0,
                backend="inline",
                collection="digest",
            )
            assert lean.digest() == sequential.digest()
            assert len(lean.trace) == len(sequential.trace)
            assert lean.trace.end_time() == sequential.trace.end_time()

    def test_digest_mode_equal_on_process_backend(self):
        graph, schedule = self._scenario()
        sequential = run_cliff_edge(graph, schedule, seed=0)
        lean = run_partitioned(
            graph,
            schedule,
            partitions=2,
            seed=0,
            backend="process",
            collection="digest",
        )
        assert lean.digest() == sequential.digest()

    def test_digest_mode_outcome_surface_matches_full_trace(self):
        """Metrics, decisions and the crash set survive without a log."""
        graph, schedule = self._scenario()
        full = run_partitioned(
            graph, schedule, partitions=2, seed=0, backend="inline"
        )
        lean = run_partitioned(
            graph,
            schedule,
            partitions=2,
            seed=0,
            backend="inline",
            collection="digest",
        )
        assert collect_metrics(lean.trace) == collect_metrics(full.trace)
        assert lean.trace.decisions() == full.trace.decisions()
        assert lean.trace.crashed_nodes() == full.trace.crashed_nodes()
        with pytest.raises(TraceUnavailableError):
            lean.trace.events

    def test_digest_mode_rejects_checkers_and_churn(self):
        graph, schedule = self._scenario()
        with pytest.raises(PartitionError):
            run_partitioned(
                graph,
                schedule,
                partitions=2,
                check=True,
                backend="inline",
                collection="digest",
            )
        churn_graph = torus(8, 8)
        churn_schedule, membership = steady_state_churn(
            churn_graph, churn_rate=0.05, duration=20.0, seed=3
        )
        with pytest.raises(PartitionError):
            run_partitioned(
                churn_graph,
                churn_schedule,
                membership,
                partitions=2,
                backend="inline",
                collection="digest",
            )

    def _digest_spec(self, partitions: int = 1) -> ExperimentSpec:
        return ExperimentSpec(
            topology=TopologySpec("torus", {"width": 8, "height": 8}),
            failure=FailureSpec(
                "region", {"members": [[2, 2], [2, 3], [3, 2]], "at": 1.0}
            ),
            runtime=RuntimeSpec(partitions=partitions),
            check=False,
            seed=2,
        )

    def test_spec_layer_digest_collection_equal(self):
        base = self._digest_spec()
        sequential = run_spec(base)
        for partitions in (1, 4):
            lean = run_spec(
                self._digest_spec(partitions).with_collection("digest")
            )
            assert lean.digest() == sequential.digest()

    def test_sweep_digest_collection_equal(self):
        """A digest-collection sweep (workers never materialise a log)
        reports the same combined digest as a full-trace sweep."""
        base = self._digest_spec()
        full = run_spec(SweepSpec(experiment=base, seeds=(0, 1), workers=1))
        lean = run_spec(
            SweepSpec(
                experiment=base.with_collection("digest"),
                seeds=(0, 1),
                workers=1,
            )
        )
        assert lean.digest() == full.digest()

    def test_digest_mode_is_hash_seed_independent(self):
        """Partials combined across shards must agree between interpreters
        started with different PYTHONHASHSEED values (the spawn-worker
        reality), and with an in-process full-trace run."""
        src = str(Path(__file__).resolve().parents[2] / "src")
        outputs = set()
        for hash_seed in ("1", "12345"):
            completed = subprocess.run(
                [sys.executable, "-c", _DIGEST_CHILD_SCRIPT.format(src=src)],
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            outputs.add(completed.stdout.strip())
        assert len(outputs) == 1
        lean_digest, full_digest = outputs.pop().splitlines()
        assert lean_digest == full_digest
        graph, schedule = self._scenario()
        assert lean_digest == run_cliff_edge(graph, schedule, seed=0).digest()


class TestSerializationBudget:
    """Byte budgets of what each collection mode ships per worker.

    ``measure_worker_payloads`` reports the packed wire blob (what the
    pipe carries), the raw pickle, and — for full traces — the
    pre-columnar object-trace baseline the columns replaced."""

    def test_digest_payloads_fit_fixed_budget_small(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        measured = measure_worker_payloads(
            graph, schedule, partitions=2, collection="digest", seed=0
        )
        assert max(measured["raw_payload_bytes"]) < 4096
        assert max(measured["payload_bytes"]) < 4096

    def test_columnar_wire_bytes_under_quarter_of_object_baseline_small(self):
        graph = torus(8, 8)
        schedule = region_crash(graph, [(2, 2), (2, 3), (3, 2), (3, 3)], at=1.0)
        measured = measure_worker_payloads(
            graph, schedule, partitions=2, collection="trace", seed=0
        )
        baseline = measured["total_object_baseline_bytes"]
        assert measured["total_payload_bytes"] <= baseline * 0.25
        # The columnar representation is smaller before compression too.
        assert measured["total_raw_payload_bytes"] < baseline

    @pytest.mark.slow
    def test_4096_node_budgets(self):
        """The issue's headline numbers: on a 4096-node torus the digest
        mode ships a few KB per worker regardless of trace length, and
        the columnar wire format stays under a quarter of the object
        baseline."""
        side = 64
        graph = torus(side, side)
        schedule = region_crash(
            graph, [(30, 30), (30, 31), (31, 30), (31, 31)], at=1.0
        )
        digest_measured = measure_worker_payloads(
            graph, schedule, partitions=4, collection="digest", seed=3
        )
        assert max(digest_measured["raw_payload_bytes"]) < 8192
        trace_measured = measure_worker_payloads(
            graph, schedule, partitions=4, collection="trace", seed=3
        )
        baseline = trace_measured["total_object_baseline_bytes"]
        assert trace_measured["total_payload_bytes"] <= baseline * 0.25
        assert trace_measured["total_raw_payload_bytes"] < baseline
        # Digest payloads are orders of magnitude below even the
        # compressed columnar wire bytes.
        assert (
            digest_measured["total_payload_bytes"] * 10
            < trace_measured["total_payload_bytes"]
        )
