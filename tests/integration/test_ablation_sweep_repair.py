"""Integration tests for the ablations (EXP-A1/A2), the adversarial property
sweep (EXP-C1) and the overlay-repair experiment (EXP-R1)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    arbitration_ablation,
    overlay_repair_sweep,
    property_sweep,
    ranking_ablation,
    run_overlay_repair,
    sweep_summary,
)


class TestArbitrationAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return arbitration_ablation()

    def test_both_scenarios_covered(self, points):
        scenarios = {point.scenario for point in points}
        assert scenarios == {"fig1b-growth", "staggered-torus"}
        assert len(points) == 4

    def test_with_arbitration_everyone_decides(self, points):
        for point in points:
            if point.arbitration:
                assert point.decisions > 0
                assert point.blocked_proposers == 0

    def test_without_arbitration_protocol_stalls(self, points):
        for point in points:
            if not point.arbitration:
                assert point.decisions == 0
                assert point.blocked_proposers > 0

    def test_rows_have_labels(self, points):
        row = points[0].as_row()
        assert {"scenario", "arbitration", "decisions", "blocked_proposers"} <= row.keys()


class TestRankingAblation:
    @pytest.fixture(scope="class")
    def points(self):
        return ranking_ablation()

    def test_all_variants_present(self, points):
        assert {point.ranking for point in points} == {
            "canonical",
            "size-only",
            "size-border",
        }

    def test_canonical_ranking_has_no_incomparable_pairs(self, points):
        canonical = next(p for p in points if p.ranking == "canonical")
        assert canonical.incomparable_pairs == 0
        assert canonical.decisions > 0
        assert canonical.specification_holds

    def test_weaker_rankings_hit_incomparable_proposals(self, points):
        for point in points:
            if point.ranking != "canonical":
                assert point.incomparable_pairs > 0

    def test_weaker_rankings_lose_liveness(self, points):
        """Without a strict total order the arbitration cannot order the
        conflicting proposals and the faulty cluster never gets a decision."""
        for point in points:
            if point.ranking != "canonical":
                assert point.decisions == 0
                assert not point.specification_holds


class TestPropertySweep:
    @pytest.fixture(scope="class")
    def cases(self):
        return property_sweep(seeds=tuple(range(12)))

    def test_specification_holds_for_every_case(self, cases):
        failing = [case for case in cases if not case.specification_holds]
        details = "\n".join(
            f"seed={case.seed} topology={case.topology}: {case.violations}"
            for case in failing
        )
        assert not failing, details

    def test_all_runs_quiesce(self, cases):
        assert all(case.quiescent for case in cases)

    def test_sweep_covers_multiple_topologies(self, cases):
        families = {case.topology.split("-")[0] for case in cases}
        assert len(families) >= 3

    def test_decisions_happen_when_crashes_happen(self, cases):
        for case in cases:
            if case.crashed > 0:
                assert case.decisions > 0

    def test_summary_aggregates(self, cases):
        summary = sweep_summary(cases)
        assert summary["cases"] == len(cases)
        assert summary["all_hold"] is True
        assert summary["violating_seeds"] == []
        assert summary["total_messages"] > 0

    def test_cases_are_reproducible(self, cases):
        from repro.experiments import run_sweep_case

        again = run_sweep_case(cases[0].seed)
        assert again == cases[0]


class TestOverlayRepair:
    @pytest.fixture(scope="class")
    def run(self):
        return run_overlay_repair(ring_size=32, successors=2, arc_start=5, arc_length=4)

    def test_specification_holds(self, run):
        assert run.result.specification.holds

    def test_agreed_view_is_the_crashed_arc(self, run):
        views = run.result.decided_views
        assert len(views) == 1
        assert next(iter(views)).members == frozenset(run.arc)

    def test_ring_restored_and_connected(self, run):
        assert run.outcome.ring_restored
        assert run.outcome.survivors_connected

    def test_single_agreed_plan_with_coordinator(self, run):
        assert len(run.outcome.plans) == 1
        plan = next(iter(run.outcome.plans.values()))
        assert plan.coordinator in run.result.graph.border(run.arc)
        assert len(plan.new_edges) == 1

    def test_point_summary(self, run):
        row = run.point().as_row()
        assert row["ring_restored"] is True
        assert row["arc_length"] == 4

    def test_sweep_always_restores_the_ring(self):
        points = overlay_repair_sweep(ring_sizes=(16, 32), arc_lengths=(2, 4))
        assert points
        for point in points:
            assert point.ring_restored, point.as_row()
            assert point.survivors_connected
            assert point.specification_holds
