"""Integration tests for the locality claims (EXP-L1/L2) and baselines (EXP-B*)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    global_consensus_comparison,
    gossip_comparison,
    locality_is_flat,
    region_size_sweep,
    run_torus_region_scenario,
    system_size_sweep,
    uncoordinated_comparison,
)


class TestLocalitySystemSize:
    @pytest.fixture(scope="class")
    def points(self):
        return system_size_sweep(sides=(8, 12, 16, 24), region_side=3)

    def test_specification_holds_everywhere(self, points):
        assert all(point.specification_holds for point in points)

    def test_message_cost_is_flat(self, points):
        assert locality_is_flat(points)
        messages = {point.messages for point in points}
        # Identical seed and identical local scenario: exactly equal costs.
        assert len(messages) == 1

    def test_speaking_nodes_do_not_grow(self, points):
        speaking = {point.speaking_nodes for point in points}
        assert len(speaking) == 1
        assert speaking.pop() == points[0].border_size

    def test_bytes_are_flat(self, points):
        assert len({point.bytes_sent for point in points}) == 1

    def test_system_sizes_really_grow(self, points):
        sizes = [point.system_size for point in points]
        assert sizes == sorted(sizes)
        assert sizes[-1] > 8 * sizes[0]

    def test_decisions_match_border(self, points):
        assert all(point.decisions == point.border_size for point in points)

    def test_rows_have_expected_keys(self, points):
        row = points[0].as_row()
        assert {"system_size", "messages", "speaking_nodes", "spec_holds"} <= row.keys()


class TestLocalityRegionSize:
    @pytest.fixture(scope="class")
    def points(self):
        return region_size_sweep(region_sides=(1, 2, 3, 4), side=16)

    def test_specification_holds_everywhere(self, points):
        assert all(point.specification_holds for point in points)

    def test_cost_grows_with_region(self, points):
        messages = [point.messages for point in points]
        assert messages == sorted(messages)
        assert messages[-1] > 10 * messages[0]

    def test_border_grows_linearly_with_side(self, points):
        assert [point.border_size for point in points] == [4, 8, 12, 16]

    def test_speaking_nodes_track_border(self, points):
        assert all(point.speaking_nodes == point.border_size for point in points)

    def test_region_side_validation(self):
        with pytest.raises(ValueError):
            run_torus_region_scenario(side=4, region_side=3)


class TestGlobalConsensusBaseline:
    @pytest.fixture(scope="class")
    def points(self):
        return global_consensus_comparison(sides=(6, 8, 10), region_side=2)

    def test_baseline_cost_grows_with_system(self, points):
        global_messages = [point.global_messages for point in points]
        assert global_messages == sorted(global_messages)
        assert global_messages[-1] > 2 * global_messages[0]

    def test_cliff_edge_cost_stays_flat(self, points):
        assert len({point.cliff_edge_messages for point in points}) == 1

    def test_ratio_widens(self, points):
        ratios = [point.message_ratio for point in points]
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]

    def test_global_involves_whole_network(self, points):
        for point in points:
            assert point.global_speaking_nodes >= point.system_size - point.region_size
            assert point.cliff_edge_speaking_nodes < point.system_size // 2


class TestGossipBaseline:
    @pytest.fixture(scope="class")
    def points(self):
        return gossip_comparison(sides=(8, 12), region_side=2)

    def test_gossip_informs_whole_network(self, points):
        for point in points:
            assert point.gossip_informed_nodes >= point.system_size - point.region_size
            assert point.cliff_edge_involved_nodes < point.system_size // 4

    def test_gossip_cost_grows_with_system(self, points):
        gossip = [point.gossip_messages for point in points]
        assert gossip == sorted(gossip)
        assert gossip[-1] > gossip[0]

    def test_gossip_converges_but_installs_many_views(self, points):
        for point in points:
            assert point.gossip_converged
            assert point.gossip_view_installs > point.cliff_edge_decisions


class TestUncoordinatedBaseline:
    @pytest.fixture(scope="class")
    def points(self):
        return uncoordinated_comparison(sides=(8,), region_side=3)

    def test_uncoordinated_conflicts_cliff_edge_none(self, points):
        for point in points:
            assert point.cliff_conflicting_pairs == 0
            assert point.uncoordinated_conflicting_pairs > 0

    def test_rows_render(self, points):
        from repro.experiments import format_table

        text = format_table([point.as_row() for point in points])
        assert "uncoord_conflicts" in text
