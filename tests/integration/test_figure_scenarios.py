"""Integration tests for the paper-figure reproductions (FIG-1, FIG-2, FIG-3)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    FIG1_F1,
    FIG1_F2,
    FIG1_F3,
    fig1a_scenario,
    fig1b_scenario,
    fig2_scenario,
    fig3_scenario,
    run_fig1b,
    run_fig2,
    run_fig3,
)
from repro.graph import Region
from repro.trace import communicating_nodes


class TestFig1a:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1a_scenario().run()

    def test_specification_holds(self, result):
        assert result.specification.holds, result.specification.summary()

    def test_both_regions_decided(self, result):
        assert result.decided_views == {
            Region(frozenset(FIG1_F1)),
            Region(frozenset(FIG1_F2)),
        }

    def test_borders_decide_their_own_region(self, result):
        f1_deciders = {d.node for d in result.decisions_on(Region(frozenset(FIG1_F1)))}
        f2_deciders = {d.node for d in result.decisions_on(Region(frozenset(FIG1_F2)))}
        assert f1_deciders == {"paris", "london", "madrid", "roma"}
        assert f2_deciders == {"tokyo", "vancouver", "portland", "sydney", "beijing"}

    def test_vancouver_never_talks_to_madrid(self, result):
        """The paper's scalability example: no cross-ocean coordination."""
        from repro.trace import message_pairs

        pairs = message_pairs(result.trace)
        assert ("vancouver", "madrid") not in pairs
        assert ("madrid", "vancouver") not in pairs

    def test_bystanders_stay_silent(self, result):
        speakers = communicating_nodes(result.trace)
        assert "newyork" not in speakers
        assert "moscow" not in speakers
        assert "cairo" not in speakers


class TestFig1b:
    @pytest.fixture(scope="class")
    def observations(self):
        return run_fig1b()

    def test_specification_holds(self, observations):
        assert observations.result.specification.holds

    def test_conflicting_views_really_arose(self, observations):
        assert observations.conflict_arose
        assert Region(frozenset(FIG1_F1)) in observations.madrid_proposals
        assert Region(frozenset(FIG1_F3)) in observations.berlin_proposals

    def test_everyone_converges_on_f3(self, observations):
        assert observations.converged_on_f3
        assert observations.result.decided_views == {Region(frozenset(FIG1_F3))}

    def test_f3_border_decides(self, observations):
        assert observations.result.deciding_nodes == {
            "london",
            "madrid",
            "roma",
            "berlin",
        }

    def test_arbitration_was_needed(self, observations):
        assert observations.rejections > 0

    def test_madrid_catches_up_through_ranking(self, observations):
        """Madrid's proposals are strictly increasing in rank (Lemma 2)."""
        proposals = observations.madrid_proposals
        assert len(proposals) >= 2
        sizes = [len(view) for view in proposals]
        assert sizes == sorted(sizes)
        assert len(set(map(tuple, (sorted(map(repr, v.members)) for v in proposals)))) == len(
            proposals
        )

    def test_scenario_is_parameterisable(self):
        quick = fig1b_scenario(madrid_detection_delay=5.0).run()
        assert quick.specification.holds
        assert quick.decided_views == {Region(frozenset(FIG1_F3))}


class TestFig2:
    @pytest.fixture(scope="class")
    def observations(self):
        return run_fig2()

    def test_specification_holds(self, observations):
        assert observations.result.specification.holds

    def test_cluster_progress(self, observations):
        assert observations.cluster_has_decision

    def test_highest_ranked_domain_always_decided(self, observations):
        # F3 is the largest domain of the figure and wins every conflict on
        # its border, so it must be decided.
        assert observations.decided_domains["F3"]
        assert set(observations.deciders["F3"]) == {"x23", "p3", "x34"}

    def test_shared_border_nodes_decide_once(self, observations):
        result = observations.result
        deciders = [decision.node for decision in result.decisions]
        assert len(deciders) == len(set(deciders))

    def test_undecided_domains_are_adjacent_to_decided_ones(self, observations):
        """A domain stays undecided only because a shared border node
        committed to a higher-ranked adjacent domain."""
        layout = observations.layout
        decided = {
            name for name, is_decided in observations.decided_domains.items() if is_decided
        }
        undecided = set(observations.decided_domains) - decided
        regions = {f"F{i+1}": Region(frozenset(m)) for i, m in enumerate(layout.domains)}
        from repro.graph import are_adjacent

        for name in undecided:
            assert any(
                are_adjacent(layout.graph, regions[name], regions[other])
                for other in decided
            )

    def test_scenario_runs_standalone(self):
        result = fig2_scenario().run()
        assert result.specification.holds


class TestFig3:
    @pytest.fixture(scope="class")
    def observations(self):
        return run_fig3()

    def test_specification_holds(self, observations):
        assert observations.result.specification.holds

    def test_first_wave_agreed(self, observations):
        assert observations.first_wave_view is not None

    def test_grown_region_proposed_but_not_decided(self, observations):
        assert observations.grown_region_proposed
        combined = Region(frozenset(observations.layout.combined))
        assert combined not in observations.result.decided_views

    def test_no_conflicting_decisions(self, observations):
        assert observations.no_conflicting_decision

    def test_progress_still_satisfied_by_early_deciders(self, observations):
        report = observations.result.specification
        assert report.reports["CD7 Progress"].holds

    def test_growth_timing_matters(self):
        """If the growth happens *before* the first agreement completes, the
        protocol converges on the combined region instead (Fig. 1b style)."""
        early_growth = fig3_scenario(growth_at=3.0).run()
        assert early_growth.specification.holds
        from repro.experiments.topologies import fig3_topology

        layout = fig3_topology()
        combined = Region(frozenset(layout.combined))
        assert combined in early_growth.decided_views
