"""Integration tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class _Capture:
    def __init__(self):
        self.lines: list[str] = []

    def __call__(self, text: str) -> None:
        self.lines.append(str(text))

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "quickstart"])
        assert args.seed == 7


class TestCommands:
    def test_quickstart(self):
        out = _Capture()
        code = main(["quickstart", "--side", "6", "--block", "2"], write=out)
        assert code == 0
        assert "decided by" in out.text
        assert "[OK ] CD1 Integrity" in out.text

    def test_figure_1a(self):
        out = _Capture()
        assert main(["figure", "1a"], write=out) == 0
        assert "decided by" in out.text

    def test_figure_1b(self):
        out = _Capture()
        assert main(["figure", "1b"], write=out) == 0
        assert "converged on F3: True" in out.text

    def test_figure_2(self):
        out = _Capture()
        assert main(["figure", "2"], write=out) == 0
        assert "cluster has a decision (CD7): True" in out.text

    def test_figure_3(self):
        out = _Capture()
        assert main(["figure", "3"], write=out) == 0
        assert "no conflicting decision (CD6): True" in out.text

    def test_repair(self):
        out = _Capture()
        assert main(["repair", "--ring-size", "16", "--arc-length", "2"], write=out) == 0
        assert "ring restored=True" in out.text

    def test_sweep(self):
        out = _Capture()
        assert main(["sweep", "--cases", "3"], write=out) == 0
        assert "all hold: True" in out.text

    def test_locality_quick(self):
        out = _Capture()
        assert main(["locality"], write=out) == 0
        assert "flat across system sizes: True" in out.text
        assert "EXP-L2" in out.text


class TestSpecLayerCommands:
    """The declarative front door: run, --emit-spec, --json."""

    def test_quickstart_emit_spec_round_trips_through_run(self, tmp_path):
        emitted = _Capture()
        assert main(["quickstart", "--emit-spec"], write=emitted) == 0
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(emitted.text)
        ran = _Capture()
        assert main(["run", str(spec_file)], write=ran) == 0
        assert "decided by" in ran.text
        assert "[OK ] CD1 Integrity" in ran.text

    def test_emitted_spec_reproduces_the_quickstart_run(self, tmp_path):
        from repro.api import ExperimentSession, load_spec

        emitted = _Capture()
        main(["quickstart", "--emit-spec"], write=emitted)
        spec = load_spec(emitted.text)
        direct = _Capture()
        main(["quickstart", "--json"], write=direct)
        assert ExperimentSession().run(spec).digest() == json.loads(direct.text)["digest"]

    def test_quickstart_json(self):
        out = _Capture()
        assert main(["quickstart", "--json"], write=out) == 0
        payload = json.loads(out.text)
        assert payload["type"] == "run"
        assert payload["specification"]["holds"] is True
        assert payload["decisions"]

    def test_sweep_json(self):
        out = _Capture()
        assert main(["sweep", "--cases", "2", "--json"], write=out) == 0
        payload = json.loads(out.text)
        assert payload["type"] == "sweep"
        assert payload["summary"]["all_hold"] is True
        assert len(payload["runs"]) == 2

    def test_sweep_emit_spec_and_spec_file(self, tmp_path):
        emitted = _Capture()
        assert main(["sweep", "--cases", "2", "--emit-spec"], write=emitted) == 0
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        ran = _Capture()
        assert main(["sweep", "--spec", str(spec_file)], write=ran) == 0
        assert "all hold: True" in ran.text

    def test_churn_json(self):
        out = _Capture()
        assert main(["churn", "--scenario", "flash", "--nodes", "16", "--json"], write=out) == 0
        payload = json.loads(out.text)
        assert payload["scenario"] == "churn-flash-crowd"
        assert payload["ok"] is True
        assert payload["runs"][0]["type"] == "churn-run"

    def test_churn_emit_spec_round_trips_through_run(self, tmp_path):
        emitted = _Capture()
        assert main(
            ["churn", "--scenario", "race", "--nodes", "16", "--emit-spec"],
            write=emitted,
        ) == 0
        spec_file = tmp_path / "churn.json"
        spec_file.write_text(emitted.text)
        ran = _Capture()
        assert main(["run", str(spec_file)], write=ran) == 0
        assert "epoch-quotiented specification CD1-CD7: holds" in ran.text

    def test_figure_emit_spec_round_trips_through_run(self, tmp_path):
        emitted = _Capture()
        assert main(["figure", "1b", "--emit-spec"], write=emitted) == 0
        spec_file = tmp_path / "figure.json"
        spec_file.write_text(emitted.text)
        ran = _Capture()
        assert main(["run", str(spec_file), "--json"], write=ran) == 0
        payload = json.loads(ran.text)
        assert payload["specification"]["holds"] is True

    def test_run_executes_sweep_documents(self, tmp_path):
        from pathlib import Path

        golden = Path(__file__).resolve().parents[1] / "data" / "golden_spec.json"
        out = _Capture()
        assert main(["run", str(golden)], write=out) == 0
        assert "all hold: True" in out.text

    def test_churn_both_runtimes_refuses_emit_spec(self):
        out = _Capture()
        code = main(
            ["churn", "--scenario", "race", "--runtime", "both", "--emit-spec"],
            write=out,
        )
        assert code == 2
        assert "single engine" in out.text

    def test_sweep_spec_conflicting_flags_rejected(self, tmp_path):
        emitted = _Capture()
        main(["sweep", "--cases", "2", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(["sweep", "--spec", str(spec_file), "--cases", "5"], write=out) == 2
        assert "conflict" in out.text

    def test_sweep_spec_workers_flag_overrides_document(self, tmp_path):
        emitted = _Capture()
        main(["sweep", "--cases", "2", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(
            ["sweep", "--spec", str(spec_file), "--workers", "2", "--json"], write=out
        ) == 0
        assert json.loads(out.text)["workers"] == 2

    def test_sweep_spec_explicit_default_worker_count_overrides(self, tmp_path):
        # An explicitly passed --workers 1 must beat a workers=2 document.
        emitted = _Capture()
        main(["sweep", "--cases", "2", "--workers", "2", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(
            ["sweep", "--spec", str(spec_file), "--workers", "1", "--json"], write=out
        ) == 0
        assert json.loads(out.text)["workers"] == 1

    def test_sweep_spec_with_emit_spec_prints_instead_of_running(self, tmp_path):
        emitted = _Capture()
        main(["sweep", "--cases", "2", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(
            ["sweep", "--spec", str(spec_file), "--workers", "4", "--emit-spec"],
            write=out,
        ) == 0
        assert json.loads(out.text)["workers"] == 4  # normalized doc, not a run

    def test_sweep_emit_spec_keeps_requested_worker_count(self):
        out = _Capture()
        assert main(["sweep", "--cases", "2", "--workers", "0", "--emit-spec"], write=out) == 0
        assert json.loads(out.text)["workers"] == 0

    def test_run_rejects_malformed_documents(self, tmp_path):
        from repro.api import SpecError

        bad = tmp_path / "bad.json"
        bad.write_text("{\"spec\": \"nonsense\"}")
        with pytest.raises(SpecError):
            main(["run", str(bad)], write=_Capture())

    def test_run_missing_file_is_a_spec_error(self, tmp_path):
        from repro.api import SpecError

        with pytest.raises(SpecError, match="cannot read spec file"):
            main(["run", str(tmp_path / "nope.json")], write=_Capture())

    def test_sweep_spec_rejects_experiment_documents(self, tmp_path):
        emitted = _Capture()
        main(["quickstart", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "exp.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(["sweep", "--spec", str(spec_file)], write=out) == 2
        assert "expected a sweep spec" in out.text


class TestPartitionsFlag:
    def test_run_partitions_matches_sequential_digest(self, tmp_path):
        emitted = _Capture()
        main(["quickstart", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(emitted.text)
        sequential = _Capture()
        assert main(["run", str(spec_file), "--json"], write=sequential) == 0
        partitioned = _Capture()
        assert (
            main(["run", str(spec_file), "--partitions", "3", "--json"], write=partitioned)
            == 0
        )
        sequential_payload = json.loads(sequential.text)
        partitioned_payload = json.loads(partitioned.text)
        assert partitioned_payload["digest"] == sequential_payload["digest"]
        assert partitioned_payload["partitions"] == 3

    def test_run_partitions_rejected_for_sweep_documents(self, tmp_path):
        emitted = _Capture()
        main(["sweep", "--cases", "2", "--emit-spec"], write=emitted)
        spec_file = tmp_path / "sweep.json"
        spec_file.write_text(emitted.text)
        out = _Capture()
        assert main(["run", str(spec_file), "--partitions", "2"], write=out) == 2
        assert "single experiments" in out.text

    def test_run_partitions_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "spec.json", "--partitions", "0"])


class TestVersion:
    def test_version_flag_prints_pyproject_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"], write=_Capture())
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_dunder_version_matches_pyproject(self):
        # tomllib is 3.11+; on 3.10 the package falls back to installed
        # metadata, which this assertion cannot pin from the source tree.
        tomllib = pytest.importorskip("tomllib")
        from pathlib import Path

        import repro

        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        with pyproject.open("rb") as handle:
            expected = tomllib.load(handle)["project"]["version"]
        assert repro.__version__ == expected
