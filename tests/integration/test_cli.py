"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class _Capture:
    def __init__(self):
        self.lines: list[str] = []

    def __call__(self, text: str) -> None:
        self.lines.append(str(text))

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_seed_is_global(self):
        args = build_parser().parse_args(["--seed", "7", "quickstart"])
        assert args.seed == 7


class TestCommands:
    def test_quickstart(self):
        out = _Capture()
        code = main(["quickstart", "--side", "6", "--block", "2"], write=out)
        assert code == 0
        assert "decided by" in out.text
        assert "[OK ] CD1 Integrity" in out.text

    def test_figure_1a(self):
        out = _Capture()
        assert main(["figure", "1a"], write=out) == 0
        assert "decided by" in out.text

    def test_figure_1b(self):
        out = _Capture()
        assert main(["figure", "1b"], write=out) == 0
        assert "converged on F3: True" in out.text

    def test_figure_2(self):
        out = _Capture()
        assert main(["figure", "2"], write=out) == 0
        assert "cluster has a decision (CD7): True" in out.text

    def test_figure_3(self):
        out = _Capture()
        assert main(["figure", "3"], write=out) == 0
        assert "no conflicting decision (CD6): True" in out.text

    def test_repair(self):
        out = _Capture()
        assert main(["repair", "--ring-size", "16", "--arc-length", "2"], write=out) == 0
        assert "ring restored=True" in out.text

    def test_sweep(self):
        out = _Capture()
        assert main(["sweep", "--cases", "3"], write=out) == 0
        assert "all hold: True" in out.text

    def test_locality_quick(self):
        out = _Capture()
        assert main(["locality"], write=out) == 0
        assert "flat across system sizes: True" in out.text
        assert "EXP-L2" in out.text
