"""Integration tests for the asyncio runtime and its parity with the simulator."""

from __future__ import annotations

import asyncio

import pytest

from repro import CliffEdgeNode, region_crash, run_cliff_edge
from repro.failures import growing_region_crash
from repro.graph import Region
from repro.graph.generators import grid, ring
from repro.runtime import AsyncRuntime, run_cliff_edge_async, run_cliff_edge_asyncio
from repro.core.properties import check_all


class TestQuickstartParity:
    @pytest.fixture(scope="class")
    def scenario(self):
        graph = grid(6, 6)
        block = [(2, 2), (2, 3), (3, 2), (3, 3)]
        return graph, region_crash(graph, block, at=1.0), frozenset(block)

    @pytest.fixture(scope="class")
    def async_result(self, scenario):
        graph, schedule, _ = scenario
        return run_cliff_edge_asyncio(
            graph, schedule, node_factory=CliffEdgeNode, timeout=30.0
        )

    def test_reaches_quiescence(self, async_result):
        assert async_result.quiescent

    def test_same_views_as_simulator(self, scenario, async_result):
        graph, schedule, _ = scenario
        sim_result = run_cliff_edge(graph, schedule)
        assert async_result.decided_views == sim_result.decided_views
        assert async_result.deciding_nodes == sim_result.deciding_nodes

    def test_expected_block_decided(self, scenario, async_result):
        _, _, block = scenario
        assert async_result.decided_views == {Region(block)}

    def test_safety_properties_hold_on_async_trace(self, scenario, async_result):
        graph, schedule, _ = scenario
        report = check_all(graph, async_result.trace, faulty=schedule.nodes)
        assert report.holds, report.summary()

    def test_metrics_populated(self, async_result):
        assert async_result.metrics.messages_sent > 0
        assert async_result.metrics.decisions == len(async_result.decisions)


class TestAsyncRuntimeBehaviour:
    def test_growing_region_scenario(self):
        graph = ring(12, successors=2)
        schedule = growing_region_crash(
            graph, [4, 5], growth_members=[6], initial_at=1.0, growth_at=6.0
        )
        result = run_cliff_edge_asyncio(
            graph, schedule, node_factory=CliffEdgeNode, timeout=30.0
        )
        assert result.quiescent
        report = check_all(graph, result.trace, faulty=schedule.nodes)
        assert report.holds, report.summary()
        # Depending on how the real-time growth interleaves with the rounds,
        # the agreement lands either on the initial region (growth arrived
        # after the decision, as in Fig. 3) or on the grown one (Fig. 1b);
        # both are within specification.
        assert result.decided_views
        for view in result.decided_views:
            assert view.members in (frozenset({4, 5}), frozenset({4, 5, 6}))

    def test_missing_process_rejected(self):
        graph = grid(3, 3)
        runtime = AsyncRuntime(graph)
        runtime.add_process((0, 0), CliffEdgeNode((0, 0)))
        with pytest.raises(Exception):
            asyncio.run(runtime.run(region_crash(graph, [(1, 1)], at=1.0)))

    def test_unknown_node_rejected(self):
        graph = grid(3, 3)
        runtime = AsyncRuntime(graph)
        with pytest.raises(Exception):
            runtime.add_process("nope", CliffEdgeNode("nope"))

    def test_async_entry_point_composes(self):
        async def scenario():
            graph = grid(4, 4)
            schedule = region_crash(graph, [(1, 1)], at=1.0)
            return await run_cliff_edge_async(
                graph, schedule, node_factory=CliffEdgeNode, timeout=20.0
            )

        result = asyncio.run(scenario())
        assert result.decided_views == {Region(frozenset({(1, 1)}))}
        assert result.deciding_nodes == grid(4, 4).border({(1, 1)})

    def test_process_accessor(self):
        graph = grid(3, 3)
        runtime = AsyncRuntime(graph)
        runtime.populate(CliffEdgeNode)
        process = runtime.process((1, 1))
        assert isinstance(process, CliffEdgeNode)
