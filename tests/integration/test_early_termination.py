"""Integration tests for the footnote-6 early-termination optimisation (EXP-A3)."""

from __future__ import annotations

import pytest

from repro import region_crash, run_cliff_edge
from repro.experiments import early_termination_ablation
from repro.failures import growing_region_crash
from repro.graph import Region
from repro.graph.generators import grid, square_region, torus
from repro.sim import JitteredFailureDetector


class TestEarlyTerminationEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        graph = torus(12, 12)
        schedule = region_crash(graph, square_region((1, 1), 3), at=1.0)
        plain = run_cliff_edge(graph, schedule, early_termination=False, check=True)
        early = run_cliff_edge(graph, schedule, early_termination=True, check=True)
        return plain, early

    def test_same_views_and_deciders(self, pair):
        plain, early = pair
        assert plain.decided_views == early.decided_views
        assert plain.deciding_nodes == early.deciding_nodes

    def test_same_decision_values(self, pair):
        plain, early = pair
        plain_values = {d.node: repr(d.value) for d in plain.decisions}
        early_values = {d.node: repr(d.value) for d in early.decisions}
        assert plain_values == early_values

    def test_specification_holds_for_both(self, pair):
        plain, early = pair
        assert plain.specification.holds
        assert early.specification.holds

    def test_early_termination_saves_messages_and_time(self, pair):
        plain, early = pair
        assert early.metrics.messages_sent < plain.metrics.messages_sent
        assert early.metrics.bytes_sent < plain.metrics.bytes_sent
        assert early.metrics.last_decision_time < plain.metrics.last_decision_time

    def test_small_border_unaffected(self):
        """With a 2-node border there is only one round; nothing to save."""
        graph = grid(5, 5)
        schedule = region_crash(graph, [(0, 0)], at=1.0)
        plain = run_cliff_edge(graph, schedule, early_termination=False)
        early = run_cliff_edge(graph, schedule, early_termination=True)
        assert plain.metrics.messages_sent == early.metrics.messages_sent
        assert plain.decided_views == early.decided_views == {
            Region(frozenset({(0, 0)}))
        }


class TestEarlyTerminationRobustness:
    def test_growth_scenario_still_converges(self):
        graph = torus(10, 10)
        schedule = growing_region_crash(
            graph,
            [(1, 1), (1, 2)],
            growth_members=[(2, 1), (2, 2)],
            initial_at=1.0,
            growth_at=4.0,
            growth_spacing=2.0,
        )
        result = run_cliff_edge(
            graph,
            schedule,
            early_termination=True,
            failure_detector=JitteredFailureDetector(0.5, 2.0),
            check=True,
        )
        assert result.specification.holds, result.specification.summary()
        assert result.metrics.decisions > 0

    def test_random_scenarios_hold_specification(self):
        from repro.failures import random_connected_region

        for seed in range(6):
            graph = torus(9, 9)
            region = random_connected_region(graph, 4 + seed % 3, seed=seed)
            schedule = region_crash(graph, region.members, at=1.0, spread=float(seed % 4))
            result = run_cliff_edge(
                graph,
                schedule,
                early_termination=True,
                failure_detector=JitteredFailureDetector(0.5, 2.0),
                seed=seed,
                check=True,
            )
            assert result.specification.holds, result.specification.summary()

    def test_ablation_rows(self):
        points = early_termination_ablation()
        assert len(points) == 4
        by_workload: dict[str, dict[bool, object]] = {}
        for point in points:
            assert point.specification_holds
            by_workload.setdefault(point.workload, {})[point.early_termination] = point
        for workload, pair in by_workload.items():
            assert pair[True].messages < pair[False].messages, workload
            assert pair[True].decisions == pair[False].decisions
            assert pair[True].decided_views == pair[False].decided_views
