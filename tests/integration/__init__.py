"""Integration tests: whole scenarios end-to-end on both runtimes."""
