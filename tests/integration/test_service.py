"""Integration tests: the experiment service against a live HTTP server.

Every test here talks to a real :class:`ServiceHTTPServer` on an
ephemeral port through the stdlib :class:`ServiceClient` — nothing is
mocked.  The acceptance contract of the service PR:

* a digest computed by a worker on the far side of the wire equals the
  digest of the same spec run locally in this process (fresh run, cache
  hit and digest-collection mode);
* an identical resubmission is answered from the result store without a
  second execution, and ``force=True`` bypasses that;
* a corrupted store entry is detected, evicted and recomputed;
* concurrent duplicate submissions collapse to one execution;
* a server with no local workers is drained by a remote worker speaking
  plain HTTP.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api import (
    ExperimentSpec,
    FailureSpec,
    RuntimeSpec,
    TopologySpec,
    locality_sweep_spec,
    quickstart_spec,
    run_spec,
)
from repro.service import (
    ServiceClient,
    ServiceError,
    WorkerLoop,
    hydrate_digest_result,
    serve,
)


@pytest.fixture
def live_server(tmp_path):
    """A serving ``ServiceHTTPServer`` with two local workers."""
    server = serve(tmp_path / "service", port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.service.stop_workers()
        server.server_close()
        thread.join(timeout=5.0)


@pytest.fixture
def workerless_server(tmp_path):
    """A serving server with no local workers (jobs wait for remote ones)."""
    server = serve(tmp_path / "service", port=0, workers=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def small_spec(seed: int = 0) -> ExperimentSpec:
    return ExperimentSpec(
        name="service-int",
        topology=TopologySpec("grid", {"width": 5, "height": 5}),
        failure=FailureSpec("region", {"members": [[1, 1], [1, 2]], "at": 1.0}),
        seed=seed,
    )


def executions(client: ServiceClient) -> int:
    return client.health()["counts"]["executions"]


class TestDigestOverTheWire:
    def test_fresh_run_matches_local_digest(self, live_server):
        client = ServiceClient(live_server.url)
        spec = small_spec()
        local_digest = run_spec(spec).digest()

        submitted = client.submit(spec.to_dict())
        assert submitted["created"]
        job = client.wait(submitted["job"]["id"], timeout=120.0)
        assert job["state"] == "done"
        assert not job["cached"]
        assert job["digest"] == local_digest

        fetched = client.result(job["id"])
        assert fetched["envelope"]["digest"] == local_digest
        assert fetched["spec"] == spec.to_dict()
        assert executions(client) == 1

    def test_identical_resubmission_is_a_cache_hit(self, live_server):
        client = ServiceClient(live_server.url)
        spec = small_spec()
        first = client.wait(client.submit(spec.to_dict())["job"]["id"], timeout=120.0)
        again = client.submit(spec.to_dict())["job"]
        assert again["state"] == "done"
        assert again["cached"]
        assert again["digest"] == first["digest"]
        assert again["id"] != first["id"]
        assert executions(client) == 1

    def test_force_bypasses_the_cache_and_reproduces_the_digest(self, live_server):
        client = ServiceClient(live_server.url)
        spec = small_spec()
        first = client.wait(client.submit(spec.to_dict())["job"]["id"], timeout=120.0)
        forced = client.wait(
            client.submit(spec.to_dict(), force=True)["job"]["id"], timeout=120.0
        )
        assert not forced["cached"]
        assert forced["digest"] == first["digest"]
        assert executions(client) == 2

    def test_sweep_digest_and_progress_over_the_wire(self, live_server):
        client = ServiceClient(live_server.url)
        sweep = locality_sweep_spec("l2", side=8, region_sides=(1, 2, 3))
        local_digest = run_spec(sweep).digest()

        submitted = client.submit(sweep.to_dict())
        job_id = submitted["job"]["id"]
        snapshots = list(client.events(job_id, timeout=120.0))
        final = snapshots[-1]
        assert final["state"] == "done"
        assert final["digest"] == local_digest
        assert final["progress"] == {"done": 3, "total": 3}
        done_counts = [snap["progress"]["done"] for snap in snapshots]
        assert done_counts == sorted(done_counts)

        envelope = client.result(job_id)["envelope"]
        assert envelope["kind"] == "sweep"
        assert envelope["digest"] == local_digest
        assert len(envelope["result"]["runs"]) == 3

    def test_digest_collection_run_hydrates_and_verifies(self, live_server):
        client = ServiceClient(live_server.url)
        spec = ExperimentSpec(
            name="service-digest-mode",
            topology=TopologySpec("grid", {"width": 5, "height": 5}),
            failure=FailureSpec("region", {"members": [[1, 1], [1, 2]], "at": 1.0}),
            runtime=RuntimeSpec(collection="digest"),
            check=False,
        )
        local = run_spec(spec)
        job = client.wait(client.submit(spec.to_dict())["job"]["id"], timeout=120.0)
        assert job["digest"] == local.digest()

        envelope = client.result(job["id"])["envelope"]
        assert envelope["collection"] == "digest"
        recorder = hydrate_digest_result(envelope)
        assert recorder.digest() == local.digest()
        assert len(recorder) == len(local.trace)

        # Tampering with the shipped partial must break hydration.
        tampered = json.loads(json.dumps(envelope))
        tampered["digest_state"]["partial"] = "0" * 64
        with pytest.raises(ServiceError):
            hydrate_digest_result(tampered)


class TestSubmissionContract:
    def test_concurrent_duplicate_submissions_execute_once(self, live_server):
        client = ServiceClient(live_server.url)
        document = small_spec(seed=3).to_dict()
        responses = []
        barrier = threading.Barrier(6)

        def submitter():
            barrier.wait()
            responses.append(ServiceClient(live_server.url).submit(document))

        threads = [threading.Thread(target=submitter) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(responses) == 6
        digests = set()
        for response in responses:
            job = client.wait(response["job"]["id"], timeout=120.0)
            assert job["state"] == "done"
            digests.add(job["digest"])
        assert len(digests) == 1
        assert executions(client) == 1

    def test_corrupt_store_entry_is_detected_and_recomputed(self, live_server):
        client = ServiceClient(live_server.url)
        spec = small_spec(seed=5)
        first = client.wait(client.submit(spec.to_dict())["job"]["id"], timeout=120.0)

        store_root = live_server.service.store.root
        (entry_path,) = list(store_root.glob(f"{first['key']}.json"))
        data = json.loads(entry_path.read_text())
        data["envelope"]["result"]["seed"] = 424242
        entry_path.write_text(json.dumps(data))

        resubmitted = client.submit(spec.to_dict())["job"]
        assert not resubmitted["cached"]
        recomputed = client.wait(resubmitted["id"], timeout=120.0)
        assert recomputed["state"] == "done"
        assert recomputed["digest"] == first["digest"]
        health = client.health()
        assert health["corruptions"] == 1
        assert health["counts"]["executions"] == 2
        # The recomputed entry is intact again.
        assert client.result(recomputed["id"])["envelope"]["digest"] == first["digest"]

    def test_result_is_409_while_no_worker_has_run_it(self, workerless_server):
        client = ServiceClient(workerless_server.url)
        job = client.submit(small_spec().to_dict())["job"]
        assert job["state"] == "queued"
        with pytest.raises(ServiceError) as excinfo:
            client.result(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.payload["job"]["id"] == job["id"]

    def test_invalid_documents_are_rejected_with_400(self, live_server):
        client = ServiceClient(live_server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"spec": "experiment"})  # no topology
        assert excinfo.value.status == 400
        assert client.health()["counts"]["queued"] == 0


class TestRemoteWorker:
    def test_http_worker_drains_a_workerless_server(self, workerless_server):
        client = ServiceClient(workerless_server.url)
        spec = small_spec(seed=9)
        local_digest = run_spec(spec).digest()
        job = client.submit(spec.to_dict())["job"]
        assert job["state"] == "queued"

        # The remote worker is just a WorkerLoop whose broker is the HTTP
        # client — the same loop the `repro work` command runs.
        loop = WorkerLoop(
            ServiceClient(workerless_server.url),
            name="remote-test",
            poll_interval=0.05,
            drain=True,
        )
        loop.run()
        assert loop.completed == 1

        finished = client.job(job["id"])
        assert finished["state"] == "done"
        assert finished["worker"] == "remote-test"
        assert finished["digest"] == local_digest
        assert client.result(job["id"])["envelope"]["digest"] == local_digest

    def test_process_pool_worker_matches_inline_digests(self, workerless_server):
        """``repro work --processes N``: jobs run in forked children, and
        every digest equals what an inline run of the same spec produces."""
        client = ServiceClient(workerless_server.url)
        expected = {}
        for seed in (3, 4, 5):
            spec = small_spec(seed=seed)
            job = client.submit(spec.to_dict())["job"]
            expected[job["id"]] = run_spec(spec).digest()

        loop = WorkerLoop(
            ServiceClient(workerless_server.url),
            name="pooled-test",
            poll_interval=0.05,
            drain=True,
            processes=2,
        )
        loop.run()
        assert loop.completed == 3
        assert loop.failed == 0
        for job_id, digest in expected.items():
            finished = client.job(job_id)
            assert finished["state"] == "done"
            assert finished["digest"] == digest

    def test_pool_reports_child_failures(self, workerless_server):
        client = ServiceClient(workerless_server.url)
        bad = small_spec(seed=6).to_dict()
        bad["topology"]["params"]["width"] = 0  # resolves, then fails to build
        job = client.submit(bad)["job"]
        loop = WorkerLoop(
            ServiceClient(workerless_server.url),
            name="pooled-fail",
            poll_interval=0.05,
            drain=True,
            processes=1,
        )
        loop.run()
        assert loop.failed == 1
        finished = client.job(job["id"])
        assert finished["state"] == "failed"
        assert finished["error"]
