"""The virtual-time runtime's determinism battery.

The tentpole claim of the virtual-time loop is that the *real* asyncio
runtime becomes digest-comparable: the same spec produces the same
canonical digest run over run, process over process, ``PYTHONHASHSEED``
over ``PYTHONHASHSEED`` — and on scenarios where asyncio's timing model
coincides with a scripted simulator schedule, the two substrates decide
identically.  This file pins all of that, plus the integration points:
sweeps through :class:`ShardedSweepRunner` and the experiment service's
execution funnel run virtual specs unchanged.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro import CliffEdgeNode, region_crash, run_cliff_edge
from repro.api import ExperimentSession, ExperimentSpec
from repro.churn import run_churn_virtual
from repro.experiments.scenarios import churn_recovery_race_scenario
from repro.graph.generators import grid
from repro.sim import ScriptedFailureDetector
from repro.vtime import run_cliff_edge_virtual


VIRTUAL_SPEC = {
    "spec": "experiment",
    "version": 1,
    "name": "vtime-battery",
    "topology": {"kind": "grid", "params": {"width": 6, "height": 6}},
    "failure": {"kind": "random_region", "params": {"size": 4}},
    "runtime": {"engine": "asyncio-virtual"},
    "seed": 11,
    "check": True,
}


class TestDigestDeterminism:
    def test_same_spec_twice_identical_digest(self):
        spec = ExperimentSpec.from_dict(VIRTUAL_SPEC)
        first = ExperimentSession().run(spec)
        second = ExperimentSession().run(spec)
        assert first.runtime == "asyncio-virtual"
        assert first.digest() == second.digest()
        assert first.quiescent and second.quiescent

    def test_digest_stable_across_hashseed_processes(self):
        """Two fresh interpreters with different ``PYTHONHASHSEED``
        values produce byte-identical digests (the CI vtime-smoke job
        re-checks this against the installed package)."""
        script = (
            "from repro.api import ExperimentSession, ExperimentSpec\n"
            f"spec = ExperimentSpec.from_dict({VIRTUAL_SPEC!r})\n"
            "print(ExperimentSession().run(spec).digest())\n"
        )
        digests = []
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")])
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
                timeout=120,
            )
            digests.append(output.stdout.strip())
        assert digests[0] == digests[1]
        assert len(digests[0]) == 64

    def test_churn_scenario_virtual_reproducible(self):
        built = churn_recovery_race_scenario(nodes=16, seed=5)
        results = [built.run(check=True, runtime="asyncio-virtual") for _ in range(2)]
        assert results[0].digest() == results[1].digest()
        assert all(r.quiescent for r in results)
        assert all(r.specification.holds for r in results)
        assert results[0].runtime == "asyncio-virtual"


class TestVirtualMatchesSimulator:
    def test_scripted_detector_identical_decisions(self):
        """With a scripted failure detector the asyncio timing model is
        fully pinned, and the virtual runtime must land on exactly the
        simulator's decisions — same views, same deciding nodes."""
        graph = grid(6, 6)
        block = [(2, 2), (2, 3), (3, 2), (3, 3)]
        schedule = region_crash(graph, block, at=1.0)
        # Border nodes (2,1) and (1,2) learn about their dead neighbours
        # late; everyone else detects after one time unit.
        delays = {}
        for crashed in block:
            delays[((2, 1), crashed)] = 8.0
            delays[((1, 2), crashed)] = 8.0
        detector = ScriptedFailureDetector(delays, default_delay=1.0)

        sim_result = run_cliff_edge(graph, schedule, failure_detector=detector)
        virtual_result = run_cliff_edge_virtual(
            graph, schedule, node_factory=CliffEdgeNode, failure_detector=detector
        )
        assert virtual_result.decided_views == sim_result.decided_views
        assert virtual_result.deciding_nodes == sim_result.deciding_nodes

    def test_no_real_sleeps(self):
        """A scenario that spends >40 virtual seconds in timeouts and
        settle polls completes in far less wall-clock time than it
        simulates — i.e. the loop never actually sleeps."""
        graph = grid(5, 5)
        schedule = region_crash(graph, [(2, 2), (2, 3)], at=1.0)
        start = time.perf_counter()
        result = run_cliff_edge_virtual(
            graph,
            schedule,
            node_factory=CliffEdgeNode,
            detection_delay=10.0,
            time_scale=1.0,  # 1 virtual unit = 1 "second" of sleeps
            timeout=120.0,
        )
        elapsed = time.perf_counter() - start
        assert result.quiescent
        assert elapsed < 10.0  # wall-clock; generous for slow CI


class TestSweepAndServiceIntegration:
    def test_virtual_specs_sweep_across_worker_counts(self):
        """asyncio-virtual experiment specs are sweepable: identical
        report digests for every worker count, like any sim spec."""
        from repro.api.specs import SweepSpec

        sweep_doc = {
            "spec": "sweep",
            "version": 1,
            "name": "vtime-sweep",
            "experiment": {**VIRTUAL_SPEC, "check": False},
            "seeds": [1, 2, 3],
        }
        reports = []
        for workers in (1, 2):
            sweep = SweepSpec.from_dict({**sweep_doc, "workers": workers})
            reports.append(ExperimentSession().run_sweep(sweep))
        assert reports[0].digest() == reports[1].digest()
        assert len(reports[0].outcomes) == 3

    def test_service_funnel_runs_virtual_spec(self):
        from repro.service import verify_envelope
        from repro.service.worker import execute_document

        envelope = execute_document({**VIRTUAL_SPEC, "check": False})
        verify_envelope(envelope)
        rerun = execute_document({**VIRTUAL_SPEC, "check": False})
        assert envelope["digest"] == rerun["digest"]


class TestChurnHarness:
    def test_run_churn_virtual_equals_run_twice(self):
        built = churn_recovery_race_scenario(nodes=16, seed=9)
        results = [
            run_churn_virtual(
                built.graph, built.schedule, built.membership, seed=9, check=True
            )
            for _ in range(2)
        ]
        assert results[0].digest() == results[1].digest()
        assert results[0].runtime == "asyncio-virtual"
        assert all(r.specification.holds for r in results)

    def test_cli_all_runtimes_agree(self, capsys):
        from repro.cli import main

        lines = []
        code = main(
            [
                "churn",
                "--scenario",
                "steady",
                "--nodes",
                "16",
                "--duration",
                "30",
                "--runtime",
                "all",
            ],
            write=lines.append,
        )
        assert code == 0
        assert "runtimes decided identical views: True" in "\n".join(lines)
